#include "comm/comm.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <thread>
#include <tuple>

#include "support/thread_annotations.hpp"

namespace lisi::comm {
namespace detail {

namespace {

/// recv() deadlock guard: a blocked receive that sees no matching message
/// for this long aborts the world instead of hanging the test suite.
double recvTimeoutSeconds() {
  static const double timeout = [] {
    if (const char* env = std::getenv("LISI_COMM_TIMEOUT_SEC")) {
      const double v = std::atof(env);
      if (v > 0) return v;
    }
    return 120.0;
  }();
  return timeout;
}

/// Tags above kMaxUserTag rotate through a window of this many values; all
/// ranks advance their collective sequence in lockstep, so equal positions
/// map to equal tags on every rank.
constexpr int kDefaultCollectiveTagWindow = 1 << 20;

/// Test knob: LISI_COMM_TAG_WINDOW shrinks the window so the wrap paths
/// (and the LISI_COMM_CHECK wrap-overlap diagnoses) can be exercised with a
/// handful of collectives instead of ~2^20.  Read per WorldContext
/// construction — NOT statically cached — so an in-process test can setenv
/// before World::run and see the shrunken window for just that world.
/// Out-of-range values (below 16 or above the default) are ignored.
int collectiveTagWindowFromEnv() {
  if (const char* env = std::getenv("LISI_COMM_TAG_WINDOW")) {
    const long v = std::atol(env);
    if (v >= 16 && v <= kDefaultCollectiveTagWindow) {
      return static_cast<int>(v);
    }
  }
  return kDefaultCollectiveTagWindow;
}

int tagForSeq(std::uint64_t seq, int window) {
  return kMaxUserTag + 1 +
         static_cast<int>(seq % static_cast<std::uint64_t>(window));
}

}  // namespace

#ifdef LISI_COMM_CHECK
/// Name of this rank's most recent collective entry point, labeling blocked
/// collective-internal recvs in the checker's deadlock reports.
thread_local const char* t_lastCollKind = "collective";

/// RAII wait registration with the checker.  Declared *before* the mailbox
/// lock in every blocking wait so that, on scope exit, the mailbox mutex is
/// released before endWait() takes the checker mutex (global lock order:
/// checker mutex -> mailbox mutex; the deadlock probe locks mailboxes while
/// holding the checker mutex).
class CheckedWaitScope {
 public:
  CheckedWaitScope(check::WorldChecker* checker, int worldRank,
                   const char* what, std::vector<check::WaitNeed> needs)
      : checker_(checker), worldRank_(worldRank) {
    if (checker_) checker_->beginWait(worldRank_, what, std::move(needs));
  }
  ~CheckedWaitScope() {
    if (checker_) checker_->endWait(worldRank_);
  }
  CheckedWaitScope(const CheckedWaitScope&) = delete;
  CheckedWaitScope& operator=(const CheckedWaitScope&) = delete;

 private:
  check::WorldChecker* checker_;
  int worldRank_;
};
#endif

/// One in-flight message.
struct Envelope {
  std::uint64_t ctx = 0;  ///< Communicator context id.
  int src = 0;            ///< Sender rank, local to the context.
  int tag = 0;
  std::vector<std::byte> payload;
};

/// Per-world-rank message queue.
struct Mailbox {
  /// Ordered after the phantom anchor: the checker's deadlock probe locks
  /// mailboxes while holding the checker mutex, never the reverse (see
  /// check::detail::gCheckerBeforeMailboxAnchor for the full contract).
  support::AnnotatedMutex mutex
      LISI_ACQUIRED_AFTER(check::detail::gCheckerBeforeMailboxAnchor);
  std::condition_variable cv;
  std::deque<Envelope> queue LISI_GUARDED_BY(mutex);
  /// Bumped on every deliver; lets a nonblocking-collective wait detect
  /// arrivals that raced with its last progress sweep.
  std::uint64_t deliveries LISI_GUARDED_BY(mutex) = 0;
};

/// State shared by every rank of one World::run invocation.
class WorldContext {
 public:
  explicit WorldContext(int nranks)
      : nranks_(nranks),
        collectiveTagWindow_(collectiveTagWindowFromEnv()),
        mailboxes_(static_cast<std::size_t>(nranks)) {
#ifdef LISI_COMM_CHECK
    checker_ = std::make_unique<check::WorldChecker>(
        nranks, kMaxUserTag, collectiveTagWindow_,
        [this](int waiter, const std::vector<check::WaitNeed>& needs) {
          // Runs with the checker mutex held; the mailbox mutex nests
          // inside it (see CheckedWaitScope for the lock order).
          Mailbox& box = mailboxes_[static_cast<std::size_t>(waiter)];
          support::MutexLock lock(box.mutex);
          for (const check::WaitNeed& need : needs) {
            for (const Envelope& e : box.queue) {
              if (e.ctx == need.ctx &&
                  (need.src == kAnySource || e.src == need.src) &&
                  (need.tag == kAnyTag || e.tag == need.tag)) {
                return true;
              }
            }
          }
          return false;
        },
        // Violations also abort the world: solver layers may catch the
        // thrown Error, and a swallowed diagnosis must not turn into a
        // silently-failed solve with a desynchronized tag stream.
        [this](const std::string& msg) { abort(msg); },
        [this](int worldRank) {
          Mailbox& box = mailboxes_[static_cast<std::size_t>(worldRank)];
          support::MutexLock lock(box.mutex);
          std::string out;
          std::size_t shown = 0;
          for (const Envelope& e : box.queue) {
            if (shown++ == 8) {
              out += " ...(" + std::to_string(box.queue.size()) + " total)";
              break;
            }
            out += "{ctx=" + std::to_string(e.ctx) +
                   " src=" + std::to_string(e.src) +
                   " tag=" + std::to_string(e.tag) + "}";
          }
          return out;
        });
    std::vector<int> identity(static_cast<std::size_t>(nranks));
    for (int i = 0; i < nranks; ++i) identity[static_cast<std::size_t>(i)] = i;
    checker_->onCommCreated(0, identity, collectiveTagWindow_);
#endif
  }

  [[nodiscard]] int worldSize() const { return nranks_; }

  /// Default collective tag window, inherited by every communicator of this
  /// world at creation (each CommState then carries its own copy, so
  /// sessions can narrow theirs without touching siblings).
  [[nodiscard]] int collectiveTagWindow() const { return collectiveTagWindow_; }

  /// Per-context diagnostic labels ("session 0", ...).  Written by
  /// Comm::setLabel from any rank thread, read by label(); the map is tiny
  /// and off every hot path, so a plain mutex suffices.
  void setContextLabel(std::uint64_t ctx, const std::string& label) {
    support::MutexLock lock(labelMutex_);
    ctxLabels_[ctx] = label;
  }
  [[nodiscard]] std::string contextLabel(std::uint64_t ctx) const {
    support::MutexLock lock(labelMutex_);
    const auto it = ctxLabels_.find(ctx);
    return it == ctxLabels_.end() ? std::string() : it->second;
  }

  /// The LISI_COMM_CHECK verifier; null in unchecked builds.
  [[nodiscard]] check::WorldChecker* checker() { return checker_.get(); }

  void deliver(int worldDest, Envelope env) {
    Mailbox& box = mailboxes_[static_cast<std::size_t>(worldDest)];
    {
      support::MutexLock lock(box.mutex);
      box.queue.push_back(std::move(env));
      ++box.deliveries;
    }
    box.cv.notify_all();
  }

  /// Non-blocking matched receive: the message if one is queued, nothing
  /// otherwise.  Used to drive nonblocking-collective progress.
  std::optional<Envelope> tryReceive(int worldRank, std::uint64_t ctx, int src,
                                     int tag) {
    Mailbox& box = mailboxes_[static_cast<std::size_t>(worldRank)];
    support::MutexLock lock(box.mutex);
    checkAborted();
    const auto it = std::find_if(box.queue.begin(), box.queue.end(),
                                 [&](const Envelope& e) {
                                   return e.ctx == ctx &&
                                          (src == kAnySource || e.src == src) &&
                                          (tag == kAnyTag || e.tag == tag);
                                 });
    if (it == box.queue.end()) return std::nullopt;
    Envelope env = std::move(*it);
    box.queue.erase(it);
    return env;
  }

  /// Current delivery count of the rank's mailbox (for waitForDelivery).
  [[nodiscard]] std::uint64_t deliveryCount(int worldRank) {
    Mailbox& box = mailboxes_[static_cast<std::size_t>(worldRank)];
    support::MutexLock lock(box.mutex);
    return box.deliveries;
  }

  /// Block until the rank's mailbox has gained a message since `seen`
  /// (updating `seen`), the world aborts, or the deadlock-guard timeout
  /// fires.  The caller re-runs its progress sweep afterwards.
  void waitForDelivery(int worldRank, std::uint64_t& seen) {
    Mailbox& box = mailboxes_[static_cast<std::size_t>(worldRank)];
    support::CondLock lock(box.mutex);
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                              std::chrono::duration<double>(recvTimeoutSeconds()));
    while (true) {
      checkAborted();
      if (box.deliveries != seen) {
        seen = box.deliveries;
        return;
      }
      if (box.cv.wait_until(lock.native(), deadline) == std::cv_status::timeout) {
        abort("nonblocking collective wait timed out (possible deadlock): "
              "world rank " +
              std::to_string(worldRank) +
              " has outstanding handles with no arriving messages");
        checkAborted();
      }
    }
  }

  /// Blocking matched receive for `worldRank`.
  Envelope receive(int worldRank, std::uint64_t ctx, int src, int tag) {
    Mailbox& box = mailboxes_[static_cast<std::size_t>(worldRank)];
#ifdef LISI_COMM_CHECK
    // Wait scope before the lock: its destructor must run after the lock's
    // (see CheckedWaitScope).  beginWait may itself diagnose a deadlock and
    // throw; the rank then unwinds into World::run, which aborts the world.
    CheckedWaitScope waitScope(checker_.get(), worldRank,
                               tag > kMaxUserTag ? t_lastCollKind : "recv",
                               {check::WaitNeed{ctx, src, tag}});
#endif
    support::CondLock lock(box.mutex);
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                              std::chrono::duration<double>(recvTimeoutSeconds()));
    while (true) {
      checkAborted();
      auto it = std::find_if(box.queue.begin(), box.queue.end(),
                             [&](const Envelope& e) {
                               return e.ctx == ctx &&
                                      (src == kAnySource || e.src == src) &&
                                      (tag == kAnyTag || e.tag == tag);
                             });
      if (it != box.queue.end()) {
        Envelope env = std::move(*it);
        box.queue.erase(it);
#ifdef LISI_COMM_CHECK
        // Mark the wait satisfied while still holding the mailbox lock:
        // from here to endWait the rank still reads as blocked, and a
        // deadlock probe finding the mailbox empty must not condemn it.
        if (checker_) checker_->noteWaitSatisfied(worldRank);
#endif
        return env;
      }
      if (box.cv.wait_until(lock.native(), deadline) == std::cv_status::timeout) {
        abort("recv timed out (possible deadlock): rank " +
              std::to_string(worldRank) + " waiting for src=" +
              std::to_string(src) + " tag=" + std::to_string(tag));
        checkAborted();
      }
    }
  }

  void abort(const std::string& reason) {
    {
      support::MutexLock lock(abortMutex_);
      if (!aborted_.load(std::memory_order_relaxed)) abortReason_ = reason;
    }
    // Memory order (audited): release pairs with the acquire loads below.
    // Readers that go on to read abortReason_ retake abortMutex_, whose
    // hand-off already covers the reason string; release/acquire is what
    // covers the lock-free flag-only readers (aborted(), the hot-path
    // checkAborted probe), making "flag seen true => reason fully written"
    // hold on every path.  seq_cst would add nothing: no reader correlates
    // this flag with a second atomic.
    aborted_.store(true, std::memory_order_release);
    for (Mailbox& box : mailboxes_) box.cv.notify_all();
  }

  void checkAborted() const {
    if (aborted_.load(std::memory_order_acquire)) {
      support::MutexLock lock(abortMutex_);
      throw Error("communicator aborted: " + abortReason_);
    }
  }

  [[nodiscard]] bool aborted() const {
    return aborted_.load(std::memory_order_acquire);
  }

  /// Allocate (or look up) the context id for a split group.  Every member
  /// of the group computes the same (parentCtx, splitSeq, color) key, so the
  /// first arriver allocates and the rest observe the same id.
  std::uint64_t splitContextId(std::uint64_t parentCtx, std::uint64_t splitSeq,
                               int color) {
    support::MutexLock lock(splitMutex_);
    auto [it, inserted] = splitIds_.try_emplace(
        std::make_tuple(parentCtx, splitSeq, color), nextCtxId_);
    if (inserted) ++nextCtxId_;
    return it->second;
  }

  /// Record which rank failed first so World::run can rethrow its exception
  /// rather than a secondary "aborted" echo from another rank.
  /// Memory order (audited): relaxed on both sides.  The CAS only arbitrates
  /// *which* rank id wins — it publishes no other data — and the sole reader
  /// (World::run) runs after joining every rank thread, so thread::join
  /// supplies the happens-before edge.
  void noteFailure(int worldRank) {
    int expected = -1;
    firstFailedRank_.compare_exchange_strong(expected, worldRank,
                                             std::memory_order_relaxed);
  }
  [[nodiscard]] int firstFailedRank() const {
    return firstFailedRank_.load(std::memory_order_relaxed);
  }

  /// Per-context collective-schedule pins (ctx id -> family).  The atomic
  /// count keeps the unpinned fast path lock-free: every collective checks
  /// it, but only worlds that actually pin ever take the mutex.
  /// Memory order (audited): the release store in setContextSchedule pairs
  /// with this acquire load, so a rank that observes a nonzero count also
  /// observes... not the map (that needs pinMutex_, taken below) but the
  /// *intent*; the real publication contract is the barrier inside
  /// pinCollectiveSchedule — no rank resolves a schedule for a collective
  /// issued before the pin.  A stale zero here is therefore benign (the
  /// pinning collective itself has not completed on this rank yet), and
  /// relaxed would in fact suffice; acquire/release is kept because it
  /// documents the pairing at zero cost on every target we build for.
  [[nodiscard]] CollectiveSchedule contextSchedule(std::uint64_t ctx) const {
    if (pinCount_.load(std::memory_order_acquire) == 0) {
      return CollectiveSchedule::kAuto;
    }
    support::MutexLock lock(pinMutex_);
    const auto it = schedulePins_.find(ctx);
    return it == schedulePins_.end() ? CollectiveSchedule::kAuto : it->second;
  }
  void setContextSchedule(std::uint64_t ctx, CollectiveSchedule schedule) {
    support::MutexLock lock(pinMutex_);
    if (schedule == CollectiveSchedule::kAuto) {
      schedulePins_.erase(ctx);
    } else {
      schedulePins_[ctx] = schedule;
    }
    pinCount_.store(static_cast<int>(schedulePins_.size()),
                    std::memory_order_release);
  }

 private:
  int nranks_;
  int collectiveTagWindow_;
  std::vector<Mailbox> mailboxes_;
  std::atomic<bool> aborted_{false};
  mutable support::AnnotatedMutex abortMutex_;
  std::string abortReason_ LISI_GUARDED_BY(abortMutex_);

  support::AnnotatedMutex splitMutex_;
  std::map<std::tuple<std::uint64_t, std::uint64_t, int>, std::uint64_t>
      splitIds_ LISI_GUARDED_BY(splitMutex_);
  std::uint64_t nextCtxId_ LISI_GUARDED_BY(splitMutex_) = 1;  // 0 is world ctx

  mutable support::AnnotatedMutex pinMutex_;
  std::map<std::uint64_t, CollectiveSchedule> schedulePins_
      LISI_GUARDED_BY(pinMutex_);
  std::atomic<int> pinCount_{0};

  mutable support::AnnotatedMutex labelMutex_;
  std::map<std::uint64_t, std::string> ctxLabels_ LISI_GUARDED_BY(labelMutex_);

  std::atomic<int> firstFailedRank_{-1};

  std::unique_ptr<check::WorldChecker> checker_;  // null unless LISI_COMM_CHECK
};

/// Per-rank communicator state (shared by all Comm copies in that rank).
struct CommState {
  std::shared_ptr<WorldContext> world;
  std::uint64_t ctx = 0;
  std::vector<int> groupWorldRanks;  ///< local rank -> world rank
  int myLocalRank = 0;
  /// Collective/split sequence positions.  Atomic for the benefit of the
  /// service layer's admission bookkeeping (a client thread may inspect a
  /// session's progress); within a rank all Comm copies share one thread,
  /// so the fetch_adds never contend and default seq_cst costs nothing —
  /// kept at the default rather than relaxed so the declaration does not
  /// suggest a cross-thread protocol that does not exist.
  std::atomic<std::uint64_t> collSeq{0};
  std::atomic<std::uint64_t> splitSeq{0};
  /// Collective tag window of this context — a session property: seeded
  /// from the world default at creation, inherited through split()/dup(),
  /// and overridden per context by Comm::setCollectiveTagWindow.  Every
  /// rank of the context holds the same value (the setter is collective).
  int collectiveTagWindow = kDefaultCollectiveTagWindow;

  /// This rank's outstanding nonblocking collectives on this communicator.
  /// Rank-thread private (a CommState belongs to exactly one rank thread),
  /// so no lock is needed.  Ops register at start and deregister when their
  /// handle is destroyed; completed ops are no-ops in the progress sweep.
  std::vector<CollOp*> pendingColl;

  [[nodiscard]] int worldRankOf(int localRank) const {
    return groupWorldRanks[static_cast<std::size_t>(localRank)];
  }
};

/// One in-flight nonblocking collective: a fixed schedule of send and
/// receive steps executed in order.  Sends are buffered (they complete
/// immediately); a receive step that finds no matching message parks the
/// op until the next progress sweep.  The step program is exactly the
/// blocking schedule of the same collective, so a completed iallreduce is
/// bitwise identical to allreduce.
class CollOp {
 public:
  enum class StepKind : std::uint8_t {
    kSend,         ///< send the accumulator to `peer`
    kRecvCombine,  ///< receive into scratch, fold into the accumulator
    kRecvReplace,  ///< receive straight into the accumulator
    kRecvDiscard,  ///< receive and drop (barrier tokens)
  };
  struct Step {
    StepKind kind;
    int peer;
  };
  using CombineFn = void (*)(void*, const void*, std::size_t, ReduceOp);

  CollOp(std::shared_ptr<CommState> state, int tag, std::vector<Step> steps,
         void* acc, std::size_t bytes, std::size_t count, std::size_t elemSize,
         ReduceOp op, CombineFn combine)
      : state_(std::move(state)),
        tag_(tag),
        steps_(std::move(steps)),
        acc_(static_cast<std::byte*>(acc)),
        bytes_(bytes),
        count_(count),
        elemSize_(elemSize),
        op_(op),
        combine_(combine) {
    if (acc_ == nullptr) {  // op-owned payload (barrier token)
      own_.resize(bytes_ == 0 ? 1 : bytes_);
      acc_ = own_.data();
    }
#ifdef LISI_COMM_CHECK
    // Before the pendingColl registration: an aliasing diagnosis throws out
    // of this constructor, and a registered-but-unconstructed op would
    // dangle in the list.
    if (auto* checker = state_->world->checker()) {
      std::vector<check::BufferRange> outstanding;
      for (const CollOp* op : state_->pendingColl) {
        if (op->done() || !op->own_.empty()) continue;  // op-owned tokens
        outstanding.push_back({op->acc_, op->bytes_, op->tag_});
      }
      checker->onNonblockingStart(state_->worldRankOf(state_->myLocalRank),
                                  tag_, own_.empty() ? acc_ : nullptr,
                                  own_.empty() ? bytes_ : 0, outstanding);
    }
#endif
    state_->pendingColl.push_back(this);
  }

  ~CollOp() {
    auto& pending = state_->pendingColl;
    const auto it = std::find(pending.begin(), pending.end(), this);
    if (it != pending.end()) pending.erase(it);
#ifdef LISI_COMM_CHECK
    // During an abort every rank unwinds with whatever handles it had in
    // flight; recording those as abandoned would only clutter the abort's
    // own diagnostic.
    if (auto* checker = state_->world->checker()) {
      if (!state_->world->aborted()) {
        checker->onNonblockingEnd(state_->worldRankOf(state_->myLocalRank),
                                  tag_, done(), steps_.size() - next_);
      }
    }
#endif
  }

  CollOp(const CollOp&) = delete;
  CollOp& operator=(const CollOp&) = delete;

  [[nodiscard]] bool done() const { return next_ >= steps_.size(); }

  /// Execute steps until done or a receive finds no message; never blocks.
  bool advance() {
    while (next_ < steps_.size()) {
      const Step& step = steps_[next_];
      if (step.kind == StepKind::kSend) {
        Envelope env;
        env.ctx = state_->ctx;
        env.src = state_->myLocalRank;
        env.tag = tag_;
        env.payload.assign(acc_, acc_ + bytes_);
        state_->world->checkAborted();
        obs::count("comm.send.count");
        obs::count("comm.send.bytes", static_cast<long long>(bytes_));
        state_->world->deliver(state_->worldRankOf(step.peer), std::move(env));
        ++next_;
        continue;
      }
      std::optional<Envelope> env = state_->world->tryReceive(
          state_->worldRankOf(state_->myLocalRank), state_->ctx, step.peer,
          tag_);
      if (!env) return false;
      obs::count("comm.recv.count");
      obs::count("comm.recv.bytes", static_cast<long long>(env->payload.size()));
      LISI_CHECK(env->payload.size() == bytes_,
                 "nonblocking collective: payload size mismatch");
      if (step.kind == StepKind::kRecvCombine) {
        combine_(acc_, env->payload.data(), count_, op_);
      } else if (step.kind == StepKind::kRecvReplace) {
        std::memcpy(acc_, env->payload.data(), bytes_);
      }
      ++next_;
    }
    return true;
  }

  /// Sweep every outstanding op of this rank (on this communicator); ops
  /// park independently, so later ops progress past earlier stalled ones —
  /// that is what makes out-of-order wait()/test() deadlock-free.
  static void progressAll(CommState& state) {
    for (CollOp* op : state.pendingColl) (void)op->advance();
  }

  /// Block until this op completes, progressing all outstanding ops.
  void waitDone() {
    WorldContext& world = *state_->world;
    const int worldRank = state_->worldRankOf(state_->myLocalRank);
    std::uint64_t seen = world.deliveryCount(worldRank);
    while (true) {
      progressAll(*state_);
      if (done()) return;
#ifdef LISI_COMM_CHECK
      if (auto* checker = world.checker()) {
        // After progressAll every incomplete op is parked at a receive
        // step; any of those arrivals unblocks the sweep, so they are all
        // registered as this wait's needs (refreshed each time around —
        // the parked steps move as ops progress).
        std::vector<check::WaitNeed> needs;
        for (const CollOp* op : state_->pendingColl) {
          if (op->done()) continue;
          needs.push_back(
              {state_->ctx, op->steps_[op->next_].peer, op->tag_});
        }
        CheckedWaitScope waitScope(checker, worldRank,
                                   "nonblocking collective wait",
                                   std::move(needs));
        world.waitForDelivery(worldRank, seen);
        continue;
      }
#endif
      world.waitForDelivery(worldRank, seen);
    }
  }

  [[nodiscard]] CommState& state() { return *state_; }

 private:
  std::shared_ptr<CommState> state_;
  int tag_;
  std::vector<Step> steps_;
  std::size_t next_ = 0;
  std::byte* acc_;                  ///< caller's out buffer (or the token)
  std::size_t bytes_;               ///< payload bytes per message
  std::size_t count_;               ///< element count (for combine)
  std::size_t elemSize_;
  ReduceOp op_;
  CombineFn combine_;           ///< null for barrier programs
  std::vector<std::byte> own_;  ///< backs acc_ when the op owns the payload
};

}  // namespace detail

CollHandle::CollHandle(std::unique_ptr<detail::CollOp> op)
    : op_(std::move(op)) {}

// Out of line: the defaulted special members destroy the held CollOp, which
// is an incomplete type for header-only users.
CollHandle::CollHandle() = default;
CollHandle::CollHandle(CollHandle&&) noexcept = default;
CollHandle& CollHandle::operator=(CollHandle&&) noexcept = default;
CollHandle::~CollHandle() = default;

bool CollHandle::test() {
  LISI_CHECK(valid(), "test() on an empty CollHandle");
  detail::CollOp::progressAll(op_->state());
  return op_->done();
}

void CollHandle::wait() {
  LISI_CHECK(valid(), "wait() on an empty CollHandle");
  obs::Span span("coll.wait");
  op_->waitDone();
}

int Comm::rank() const {
  LISI_CHECK(valid(), "rank() on an invalid communicator");
  return state_->myLocalRank;
}

int Comm::size() const {
  LISI_CHECK(valid(), "size() on an invalid communicator");
  return static_cast<int>(state_->groupWorldRanks.size());
}

void Comm::sendBytes(const void* data, std::size_t n, int dest, int tag) const {
  LISI_CHECK(valid(), "sendBytes() on an invalid communicator");
  LISI_CHECK(dest >= 0 && dest < size(), "sendBytes: dest out of range");
  LISI_CHECK(tag >= 0, "sendBytes: negative tag");
#ifdef LISI_COMM_CHECK
  if (auto* checker = state_->world->checker()) {
    checker->onSend(state_->ctx, state_->myLocalRank,
                    state_->worldRankOf(state_->myLocalRank), dest, tag);
  }
#endif
  obs::count("comm.send.count");
  obs::count("comm.send.bytes", static_cast<long long>(n));
  state_->world->checkAborted();
  detail::Envelope env;
  env.ctx = state_->ctx;
  env.src = state_->myLocalRank;
  env.tag = tag;
  env.payload.resize(n);
  if (n != 0) std::memcpy(env.payload.data(), data, n);
  state_->world->deliver(state_->worldRankOf(dest), std::move(env));
}

std::vector<std::byte> Comm::recvBytes(int src, int tag, Status* status) const {
  LISI_CHECK(valid(), "recvBytes() on an invalid communicator");
  LISI_CHECK(src == kAnySource || (src >= 0 && src < size()),
             "recvBytes: src out of range");
  detail::Envelope env = state_->world->receive(
      state_->worldRankOf(state_->myLocalRank), state_->ctx, src, tag);
  obs::count("comm.recv.count");
  obs::count("comm.recv.bytes", static_cast<long long>(env.payload.size()));
  if (status) {
    status->source = env.src;
    status->tag = env.tag;
    status->bytes = env.payload.size();
  }
  return std::move(env.payload);
}

void Comm::recvBytesInto(void* data, std::size_t n, int src, int tag,
                         Status* status) const {
  std::vector<std::byte> payload = recvBytes(src, tag, status);
  LISI_CHECK(payload.size() == n,
             "recvBytesInto: message size (" + std::to_string(payload.size()) +
                 ") != buffer size (" + std::to_string(n) + ")");
  if (n != 0) std::memcpy(data, payload.data(), n);
}

int Comm::nextCollectiveTag(check::CollKind kind, int root, std::uint64_t bytes,
                            int reduceOp) const {
  LISI_CHECK(valid(), "collective on an invalid communicator");
  // Check the abort flag before advancing the sequence: solver layers catch
  // lisi::Error and return error codes, so a rank that swallowed the abort
  // mid-solve resumes with fewer collectives issued than its peers.  Letting
  // it draw the next tag anyway would desynchronize the lockstep sequence
  // and (under LISI_COMM_CHECK) bury the original diagnostic beneath a
  // secondary mismatch report.
  state_->world->checkAborted();
  const std::uint64_t seq = state_->collSeq.fetch_add(1);
  const int tag = detail::tagForSeq(seq, state_->collectiveTagWindow);
#ifdef LISI_COMM_CHECK
  detail::t_lastCollKind = check::collKindName(kind);
  if (auto* checker = state_->world->checker()) {
    check::CollSignature sig;
    sig.kind = kind;
    sig.root = root;
    sig.bytes = bytes;
    sig.reduceOp = reduceOp;
    sig.treeFamily = detail::useTreeSchedule(*state_, size());
    checker->onCollectiveStart(state_->ctx, state_->myLocalRank, seq, tag, 1,
                               sig);
  }
#else
  (void)kind;
  (void)root;
  (void)bytes;
  (void)reduceOp;
#endif
  return tag;
}

namespace {
/// Process-wide schedule fallback, consulted only when a context has no pin.
/// Memory order (audited): relaxed on both sides, deliberately.  The enum is
/// a self-contained value — no reader dereferences anything published by the
/// writer — so the only question is *when* a store becomes visible, and the
/// API contract already answers it: setCollectiveSchedule is documented to
/// be called while the affected worlds are quiescent (tests set it between
/// World::run invocations; the service pins per-context instead).  A rank
/// that raced this store could resolve the old family, which is exactly the
/// lockstep hazard pinCollectiveSchedule's barrier exists to rule out —
/// stronger ordering here could not fix that race, only hide it from TSan.
std::atomic<CollectiveSchedule> g_schedule{CollectiveSchedule::kAuto};
}  // namespace

void setCollectiveSchedule(CollectiveSchedule schedule) {
  g_schedule.store(schedule, std::memory_order_relaxed);
}

CollectiveSchedule collectiveSchedule() {
  return g_schedule.load(std::memory_order_relaxed);
}

bool detail::useTreeSchedule(int p) {
  switch (collectiveSchedule()) {
    case CollectiveSchedule::kTree: return true;
    case CollectiveSchedule::kStar: return false;
    case CollectiveSchedule::kAuto: break;
  }
  // Ranks are threads: with a core per rank the tree's O(log p) critical
  // path sets the latency, but on an oversubscribed host every tree edge
  // is a forced scheduler handoff (the child cannot progress until its
  // parent ran), so the star's independent sends win.
  // hardware_concurrency() is identical on every rank of a world (one
  // process), so all ranks resolve the same family and the collective tag
  // sequence stays in lockstep.  Cached: glibc re-reads sysfs on every
  // call, which would cost more than a small collective itself.
  static const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 || static_cast<int>(hw) >= p;
}

bool detail::useTreeSchedule(const CommState& state, int p) {
  if (state.world != nullptr) {
    switch (state.world->contextSchedule(state.ctx)) {
      case CollectiveSchedule::kTree: return true;
      case CollectiveSchedule::kStar: return false;
      case CollectiveSchedule::kAuto: break;
    }
  }
  return useTreeSchedule(p);
}

void Comm::pinCollectiveSchedule(CollectiveSchedule schedule) const {
  LISI_CHECK(valid(), "pinCollectiveSchedule on an invalid communicator");
  // Barrier-then-set: a rank enters the barrier only after completing its
  // previous collective, and the barrier completes only once every rank
  // entered it — so by the time any rank flips the pin, no rank can still
  // be about to resolve the OLD family for an earlier collective.  Each
  // rank then records the same value before its own next collective.
  barrier();
  state_->world->setContextSchedule(state_->ctx, schedule);
}

CollectiveSchedule Comm::pinnedCollectiveSchedule() const {
  LISI_CHECK(valid(), "pinnedCollectiveSchedule on an invalid communicator");
  return state_->world->contextSchedule(state_->ctx);
}

void Comm::setCollectiveTagWindow(int window) const {
  LISI_CHECK(valid(), "setCollectiveTagWindow on an invalid communicator");
  LISI_CHECK(window >= 16 && window <= detail::kDefaultCollectiveTagWindow,
             "setCollectiveTagWindow: window must lie in [16, " +
                 std::to_string(detail::kDefaultCollectiveTagWindow) + "]");
  // Barrier-then-set (see pinCollectiveSchedule): after the barrier no rank
  // can still be drawing a tag for an earlier collective, so every rank
  // switches windows at the same collective-sequence position and the
  // lockstep tag streams stay identical.  Only this CommState changes:
  // the parent and any split/dup siblings keep their own windows.
  barrier();
  state_->collectiveTagWindow = window;
#ifdef LISI_COMM_CHECK
  if (auto* checker = state_->world->checker()) {
    checker->onCommTagWindow(state_->ctx, window);
  }
#endif
}

int Comm::collectiveTagWindow() const {
  LISI_CHECK(valid(), "collectiveTagWindow on an invalid communicator");
  return state_->collectiveTagWindow;
}

void Comm::setLabel(const std::string& label) const {
  LISI_CHECK(valid(), "setLabel on an invalid communicator");
  state_->world->setContextLabel(state_->ctx, label);
#ifdef LISI_COMM_CHECK
  if (auto* checker = state_->world->checker()) {
    checker->onCommLabeled(state_->ctx, label);
  }
#endif
}

std::string Comm::label() const {
  LISI_CHECK(valid(), "label on an invalid communicator");
  return state_->world->contextLabel(state_->ctx);
}

std::vector<int> Comm::reserveCollectiveTags(int count) const {
  LISI_CHECK(valid(), "reserveCollectiveTags on an invalid communicator");
  LISI_CHECK(count > 0, "reserveCollectiveTags: count must be positive");
  state_->world->checkAborted();  // see nextCollectiveTag
  const std::uint64_t seq =
      state_->collSeq.fetch_add(static_cast<std::uint64_t>(count));
  std::vector<int> tags(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    tags[static_cast<std::size_t>(i)] = detail::tagForSeq(
        seq + static_cast<std::uint64_t>(i), state_->collectiveTagWindow);
  }
#ifdef LISI_COMM_CHECK
  detail::t_lastCollKind = "reserveCollectiveTags";
  if (auto* checker = state_->world->checker()) {
    check::CollSignature sig;
    sig.kind = check::CollKind::kReserveTags;
    sig.bytes = static_cast<std::uint64_t>(count);
    sig.treeFamily = detail::useTreeSchedule(*state_, size());
    checker->onCollectiveStart(state_->ctx, state_->myLocalRank, seq,
                               tags.front(), count, sig);
  }
#endif
  return tags;
}

void Comm::barrier() const {
  // Tree family: dissemination barrier, ceil(log2 p) rounds; in round k
  // every rank signals (rank + 2^k) mod p and waits on (rank - 2^k) mod p.
  // Each round's source is distinct, so one tag disambiguates all rounds.
  // Star family: gather tokens at rank 0, then release everyone.
  const int tag = nextCollectiveTag(check::CollKind::kBarrier, -1, 0);
  const int p = size();
  obs::Span span(detail::useTreeSchedule(*state_, p) ? "coll.barrier.tree"
                                            : "coll.barrier.star");
  if (p == 1) return;
  const int r = rank();
  const char token = 0;
  if (!detail::useTreeSchedule(*state_, p)) {
    if (r == 0) {
      for (int q = 1; q < p; ++q) (void)recvValue<char>(q, tag);
      for (int q = 1; q < p; ++q) sendValue(token, q, tag);
    } else {
      sendValue(token, 0, tag);
      (void)recvValue<char>(0, tag);
    }
    return;
  }
  for (int m = 1; m < p; m <<= 1) {
    sendValue(token, (r + m) % p, tag);
    (void)recvValue<char>((r - m + p) % p, tag);
  }
}

void Comm::bcastBytes(void* data, std::size_t n, int root) const {
  // Tree family: binomial tree rooted at `root` — each rank receives from
  // its parent once and forwards to at most ceil(log2 p) children, so the
  // critical path is O(log p).  Star family: the root sends p-1
  // independent (buffered, non-blocking) messages.
  const int tag = nextCollectiveTag(check::CollKind::kBcast, root,
                                    static_cast<std::uint64_t>(n));
  const int p = size();
  obs::Span span(detail::useTreeSchedule(*state_, p) ? "coll.bcast.tree"
                                            : "coll.bcast.star",
                 static_cast<std::uint64_t>(n));
  LISI_CHECK(root >= 0 && root < p, "bcast: root out of range");
  if (p == 1) return;
  if (!detail::useTreeSchedule(*state_, p)) {
    if (rank() == root) {
      for (int r = 0; r < p; ++r) {
        if (r != root) sendBytes(data, n, r, tag);
      }
    } else {
      recvBytesInto(data, n, root, tag);
    }
    return;
  }
  const int vr = (rank() - root + p) % p;  // virtual rank: root -> 0
  int mask = 1;
  while (mask < p) {
    if (vr & mask) {
      recvBytesInto(data, n, (vr - mask + root) % p, tag);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (vr + mask < p) sendBytes(data, n, (vr + mask + root) % p, tag);
    mask >>= 1;
  }
}

void Comm::reduceBytes(const void* in, void* out, std::size_t count,
                       std::size_t elemSize, ReduceOp op, int root,
                       void (*combine)(void*, const void*, std::size_t,
                                       ReduceOp)) const {
  // Tree family: binomial tree mirror of bcast — leaves send first,
  // interior ranks fold each child subtree into their accumulator in
  // ascending-mask order, so the schedule is fixed and results are
  // reproducible run-to-run.  Star family: the root folds every rank's
  // contribution in ascending rank order (also fixed, also reproducible,
  // but a different association than the tree — pick one family per run).
  const int tag = nextCollectiveTag(check::CollKind::kReduce, root,
                                    static_cast<std::uint64_t>(count * elemSize),
                                    static_cast<int>(op));
  const int p = size();
  obs::Span span(detail::useTreeSchedule(*state_, p) ? "coll.reduce.tree"
                                            : "coll.reduce.star",
                 static_cast<std::uint64_t>(count * elemSize));
  LISI_CHECK(root >= 0 && root < p, "reduce: root out of range");
  const std::size_t bytes = count * elemSize;
  if (rank() == root && bytes != 0 && out != in) std::memcpy(out, in, bytes);
  if (p == 1 || bytes == 0) return;
  if (!detail::useTreeSchedule(*state_, p)) {
    if (rank() == root) {
      std::vector<std::byte> contrib(bytes);
      for (int r = 0; r < p; ++r) {
        if (r == root) continue;
        recvBytesInto(contrib.data(), bytes, r, tag);
        combine(out, contrib.data(), count, op);
      }
    } else {
      sendBytes(in, bytes, root, tag);
    }
    return;
  }
  const int vr = (rank() - root + p) % p;
  std::vector<std::byte> scratch;
  void* acc = out;
  if (rank() != root) {
    scratch.resize(2 * bytes);
    acc = scratch.data();
    std::memcpy(acc, in, bytes);
  } else {
    scratch.resize(bytes);
  }
  std::byte* contrib =
      rank() == root ? scratch.data() : scratch.data() + bytes;
  int mask = 1;
  while (mask < p) {
    if (vr & mask) {
      sendBytes(acc, bytes, (vr - mask + root) % p, tag);
      return;
    }
    const int childV = vr + mask;
    if (childV < p) {
      recvBytesInto(contrib, bytes, (childV + root) % p, tag);
      combine(acc, contrib, count, op);
    }
    mask <<= 1;
  }
}

void Comm::allreduceBytes(const void* in, void* out, std::size_t count,
                          std::size_t elemSize, ReduceOp op,
                          void (*combine)(void*, const void*, std::size_t,
                                          ReduceOp)) const {
  // Tree family: recursive doubling over the largest power-of-two core;
  // surplus ranks fold their contribution into a core partner up front and
  // read the result back at the end.  log2(p) exchange rounds on the core.
  // Every rank combines the identical operand tree (the ops are bitwise
  // commutative), so all ranks finish with bitwise-identical results.
  // Star family: star reduce into rank 0 + star bcast (all ranks receive
  // rank 0's bytes, so results are identical across ranks here too).
  const int p = size();
  const std::size_t bytes = count * elemSize;
  obs::Span span(detail::useTreeSchedule(*state_, p) ? "coll.allreduce.tree"
                                            : "coll.allreduce.star",
                 static_cast<std::uint64_t>(bytes));
  if (bytes != 0 && out != in) std::memcpy(out, in, bytes);
  if (p == 1 || bytes == 0) return;
  if (!detail::useTreeSchedule(*state_, p)) {
    reduceBytes(out, out, count, elemSize, op, 0, combine);
    bcastBytes(out, bytes, 0);
    return;
  }
  const int tag = nextCollectiveTag(check::CollKind::kAllreduce, -1,
                                    static_cast<std::uint64_t>(bytes),
                                    static_cast<int>(op));
  const int r = rank();
  int pof2 = 1;
  while (pof2 * 2 <= p) pof2 *= 2;
  const int rem = p - pof2;
  std::vector<std::byte> contrib(bytes);
  int coreRank;  // rank within the power-of-two core, or -1 if folded out
  if (r < 2 * rem) {
    if (r % 2 == 0) {
      sendBytes(out, bytes, r + 1, tag);
      coreRank = -1;
    } else {
      recvBytesInto(contrib.data(), bytes, r - 1, tag);
      combine(out, contrib.data(), count, op);
      coreRank = r / 2;
    }
  } else {
    coreRank = r - rem;
  }
  if (coreRank >= 0) {
    for (int mask = 1; mask < pof2; mask <<= 1) {
      const int partnerCore = coreRank ^ mask;
      const int partner =
          partnerCore < rem ? partnerCore * 2 + 1 : partnerCore + rem;
      sendBytes(out, bytes, partner, tag);
      recvBytesInto(contrib.data(), bytes, partner, tag);
      combine(out, contrib.data(), count, op);
    }
  }
  if (r < 2 * rem) {
    if (r % 2 == 1) {
      sendBytes(out, bytes, r - 1, tag);
    } else {
      recvBytesInto(out, bytes, r + 1, tag);
    }
  }
}

CollHandle Comm::iallreduceBytes(
    const void* in, void* out, std::size_t count, std::size_t elemSize,
    ReduceOp op,
    void (*combine)(void*, const void*, std::size_t, ReduceOp)) const {
  // Same step sequences as allreduceBytes (see the schedule notes there),
  // recorded as a program instead of executed inline, so a completed
  // iallreduce is bitwise identical to the blocking call.  One fresh
  // collective tag per handle keeps overlapping iallreduces (and any
  // blocking collectives issued while this one is in flight) from
  // cross-matching.
  const std::size_t bytes = count * elemSize;
  const int tag = nextCollectiveTag(check::CollKind::kIallreduce, -1,
                                    static_cast<std::uint64_t>(bytes),
                                    static_cast<int>(op));
  obs::count("coll.iallreduce.start");
  const int p = size();
  if (bytes != 0 && out != in) std::memcpy(out, in, bytes);
  using Step = detail::CollOp::Step;
  using K = detail::CollOp::StepKind;
  std::vector<Step> steps;
  if (p > 1 && bytes != 0) {
    const int r = rank();
    if (!detail::useTreeSchedule(*state_, p)) {
      if (r == 0) {
        for (int q = 1; q < p; ++q) steps.push_back({K::kRecvCombine, q});
        for (int q = 1; q < p; ++q) steps.push_back({K::kSend, q});
      } else {
        steps.push_back({K::kSend, 0});
        steps.push_back({K::kRecvReplace, 0});
      }
    } else {
      int pof2 = 1;
      while (pof2 * 2 <= p) pof2 *= 2;
      const int rem = p - pof2;
      int coreRank;
      if (r < 2 * rem) {
        if (r % 2 == 0) {
          steps.push_back({K::kSend, r + 1});
          coreRank = -1;
        } else {
          steps.push_back({K::kRecvCombine, r - 1});
          coreRank = r / 2;
        }
      } else {
        coreRank = r - rem;
      }
      if (coreRank >= 0) {
        for (int mask = 1; mask < pof2; mask <<= 1) {
          const int partnerCore = coreRank ^ mask;
          const int partner =
              partnerCore < rem ? partnerCore * 2 + 1 : partnerCore + rem;
          steps.push_back({K::kSend, partner});
          steps.push_back({K::kRecvCombine, partner});
        }
      }
      if (r < 2 * rem) {
        steps.push_back(r % 2 == 1 ? Step{K::kSend, r - 1}
                                   : Step{K::kRecvReplace, r + 1});
      }
    }
  }
  auto collOp = std::make_unique<detail::CollOp>(
      state_, tag, std::move(steps), out, bytes, count, elemSize, op, combine);
  (void)collOp->advance();  // post the leading sends before returning
  return CollHandle(std::move(collOp));
}

CollHandle Comm::ibarrier() const {
  // Dissemination rounds (tree family) or token gather/release via rank 0
  // (star family) — the same patterns as Comm::barrier, recorded as a
  // program.  The token lives inside the op (acc == nullptr).
  const int tag = nextCollectiveTag(check::CollKind::kIbarrier, -1, 0);
  obs::count("coll.ibarrier.start");
  const int p = size();
  using Step = detail::CollOp::Step;
  using K = detail::CollOp::StepKind;
  std::vector<Step> steps;
  if (p > 1) {
    const int r = rank();
    if (!detail::useTreeSchedule(*state_, p)) {
      if (r == 0) {
        for (int q = 1; q < p; ++q) steps.push_back({K::kRecvDiscard, q});
        for (int q = 1; q < p; ++q) steps.push_back({K::kSend, q});
      } else {
        steps.push_back({K::kSend, 0});
        steps.push_back({K::kRecvDiscard, 0});
      }
    } else {
      for (int m = 1; m < p; m <<= 1) {
        steps.push_back({K::kSend, (r + m) % p});
        steps.push_back({K::kRecvDiscard, (r - m + p) % p});
      }
    }
  }
  auto collOp = std::make_unique<detail::CollOp>(
      state_, tag, std::move(steps), nullptr, 1, 0, 0, ReduceOp::kSum,
      nullptr);
  (void)collOp->advance();
  return CollHandle(std::move(collOp));
}

Comm Comm::split(int color, int key) const {
  LISI_CHECK(valid(), "split() on an invalid communicator");
  struct Triple {
    int color;
    int key;
    int parentRank;
  };
  const Triple mine{color, key, rank()};
  std::vector<Triple> all =
      allgatherv(std::span<const Triple>(&mine, 1), nullptr);
  const std::uint64_t seq = state_->splitSeq.fetch_add(1);
  if (color < 0) return Comm{};  // like MPI_UNDEFINED: not in any new group
  std::vector<Triple> group;
  for (const Triple& t : all) {
    if (t.color == color) group.push_back(t);
  }
  std::sort(group.begin(), group.end(), [](const Triple& a, const Triple& b) {
    return std::tie(a.key, a.parentRank) < std::tie(b.key, b.parentRank);
  });
  auto newState = std::make_shared<detail::CommState>();
  newState->world = state_->world;
  newState->ctx = state_->world->splitContextId(state_->ctx, seq, color);
  newState->collectiveTagWindow = state_->collectiveTagWindow;
  newState->groupWorldRanks.reserve(group.size());
  for (std::size_t i = 0; i < group.size(); ++i) {
    newState->groupWorldRanks.push_back(
        state_->worldRankOf(group[i].parentRank));
    if (group[i].parentRank == rank()) {
      newState->myLocalRank = static_cast<int>(i);
    }
  }
#ifdef LISI_COMM_CHECK
  if (auto* checker = state_->world->checker()) {
    checker->onCommCreated(newState->ctx, newState->groupWorldRanks,
                           newState->collectiveTagWindow);
  }
#endif
  return Comm(std::move(newState));
}

Comm Comm::dup() const { return split(0, rank()); }

void Comm::abort(const std::string& reason) const {
  LISI_CHECK(valid(), "abort() on an invalid communicator");
  state_->world->abort(reason);
}

void World::run(int nranks, const std::function<void(Comm&)>& body) {
  LISI_CHECK(nranks >= 1, "World::run: nranks must be >= 1");
  auto world = std::make_shared<detail::WorldContext>(nranks);
  std::vector<std::exception_ptr> failures(static_cast<std::size_t>(nranks));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    threads.emplace_back([&, r] {
      obs::setThreadRank(r);
      auto state = std::make_shared<detail::CommState>();
      state->world = world;
      state->ctx = 0;
      state->collectiveTagWindow = world->collectiveTagWindow();
      state->groupWorldRanks.resize(static_cast<std::size_t>(nranks));
      for (int i = 0; i < nranks; ++i) {
        state->groupWorldRanks[static_cast<std::size_t>(i)] = i;
      }
      state->myLocalRank = r;
      Comm comm(state);
      try {
        body(comm);
#ifdef LISI_COMM_CHECK
        // Inside the try: a leak/strand diagnosis from the exit sweep is a
        // rank failure like any other, so firstFailedRank makes the report
        // the exception World::run rethrows.
        if (auto* checker = world->checker()) {
          if (!world->aborted()) checker->onRankExit(r);
        }
#endif
      } catch (...) {
        failures[static_cast<std::size_t>(r)] = std::current_exception();
        world->noteFailure(r);
        world->abort("rank " + std::to_string(r) + " threw an exception");
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const int first = world->firstFailedRank();
  if (first >= 0 && failures[static_cast<std::size_t>(first)]) {
    std::rethrow_exception(failures[static_cast<std::size_t>(first)]);
  }
  for (const std::exception_ptr& e : failures) {
    if (e) std::rethrow_exception(e);
  }
  // Every rank body returned, but the world was aborted: some layer caught
  // the original Error (solver components legitimately translate failures
  // into return codes) and the diagnosis would otherwise vanish.  Surface
  // the recorded first reason rather than reporting success.
  world->checkAborted();
}

}  // namespace lisi::comm
