// LISI_COMM_CHECK: the MiniMPI correctness checker.
//
// MiniMPI's contract has three load-bearing invariants that, when violated,
// surface as hangs or silently corrupted tag streams contained only by the
// recv timeout:
//
//   1. *Lockstep collectives* — every rank of a communicator must issue the
//      same collective sequence with matching signatures (kind, root, fixed
//      payload size, reduction op, schedule family).  A single divergent
//      call desynchronizes the shared collective-tag counter and every later
//      collective cross-matches messages.
//   2. *Acyclic waiting* — sends are buffered and never block, so the only
//      way ranks stop making progress is a closed set of receivers each
//      waiting on a message that only another member of the set could send.
//   3. *Tag-space discipline* — user point-to-point traffic stays in
//      [0, kMaxUserTag]; tags above it belong to collective schedules and to
//      blocks handed out by reserveCollectiveTags(), and a stray send into
//      that space corrupts a schedule in flight.
//
// This header declares the checker that *enforces* those invariants.  It is
// compiled into lisi_comm unconditionally, but the hooks in comm.cpp that
// feed it only exist when the library is configured with
// -DLISI_COMM_CHECK=ON (which defines LISI_COMM_CHECK for the lisi_comm
// target): with the option off the checker is never constructed and the hot
// paths compile to exactly the unchecked code.  check::enabled() reports at
// run time which way the linked library was built.
//
// Every violation throws lisi::Error with a diagnostic naming the rank, the
// operation, and the call signature; the throw unwinds into World::run,
// which aborts the world so every blocked peer wakes immediately.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "support/thread_annotations.hpp"

namespace lisi::comm::check {

namespace detail {
/// Phantom lock-order anchor for the documented global order
///   checker mutex -> mailbox mutex.
/// The checker cannot name WorldContext's per-rank mailbox mutexes (they
/// live in a comm.cpp-private struct) and vice versa, so both sides order
/// themselves against this never-locked capability instead: the checker's
/// mutex_ is ACQUIRED_BEFORE it and every Mailbox::mutex is ACQUIRED_AFTER
/// it.  Clang's -Wthread-safety-beta lock-order analysis then rejects any
/// new call path that takes the checker mutex while a mailbox is held.
inline support::AnnotatedMutex gCheckerBeforeMailboxAnchor;
}  // namespace detail

/// True if the linked lisi_comm library was built with LISI_COMM_CHECK.
/// (Test binaries use this to skip checker-diagnostic tests on unchecked
/// builds; the preprocessor macro is private to the library's own TUs.)
[[nodiscard]] bool enabled();

/// Collective operation kinds, one per public entry point that advances the
/// collective sequence.  Part of the lockstep signature.
enum class CollKind : std::uint8_t {
  kBarrier,
  kBcast,
  kReduce,
  kAllreduce,
  kGather,
  kGatherv,
  kAllgatherv,
  kScatter,
  kScatterv,
  kIallreduce,
  kIbarrier,
  kReserveTags,
};

/// Human-readable name for diagnostics ("allreduce", "reserveCollectiveTags").
[[nodiscard]] const char* collKindName(CollKind kind);

/// Payload-size sentinel for collectives whose per-rank contribution sizes
/// legitimately differ (gatherv/allgatherv/scatterv): size is excluded from
/// the lockstep signature.
inline constexpr std::uint64_t kVariableBytes = ~std::uint64_t{0};

/// The cross-checked call signature of one collective, as seen by one rank.
struct CollSignature {
  CollKind kind = CollKind::kBarrier;
  int root = -1;                ///< -1 for rootless collectives
  std::uint64_t bytes = 0;      ///< fixed payload bytes, or kVariableBytes
  int reduceOp = -1;            ///< static_cast<int>(ReduceOp), -1 if none
  bool treeFamily = true;       ///< schedule family resolved for this call
};

/// FNV-1a hash of a signature at a given (context, sequence) position.  The
/// hash is what ranks compare; the struct is kept alongside so a mismatch
/// report can name both call sites field by field.
[[nodiscard]] std::uint64_t signatureHash(const CollSignature& sig,
                                          std::uint64_t ctx,
                                          std::uint64_t seq);

/// Render "allreduce(root=-, bytes=800, op=sum, family=tree)".
[[nodiscard]] std::string describeSignature(const CollSignature& sig);

/// One message that would unblock a waiting rank: a (context, source, tag)
/// pattern with the usual -1 wildcards.  `src` is local to the context.
struct WaitNeed {
  std::uint64_t ctx = 0;
  int src = -1;
  int tag = -1;
};

/// An outstanding nonblocking collective's user buffer, for aliasing checks.
struct BufferRange {
  const void* data = nullptr;
  std::size_t bytes = 0;
  int tag = 0;
};

/// Per-world checker state.  One instance per WorldContext; all methods are
/// thread-safe (rank threads call in concurrently).  Methods that detect a
/// violation throw lisi::Error and leave the checker usable (the world is
/// about to abort anyway).
///
/// Lock discipline: the checker's own mutex is acquired *only* from rank
/// threads that hold no mailbox mutex, and the queue probe (which locks a
/// mailbox) is invoked with the checker mutex held — so the global order is
/// checker mutex -> mailbox mutex, and comm.cpp must never call into the
/// checker while holding a mailbox lock.
class WorldChecker {
 public:
  /// Probe: does `waiterWorldRank`'s mailbox hold a message satisfying any
  /// of `needs`?  Supplied by WorldContext (it owns the mailboxes).
  using QueueProbe =
      std::function<bool(int waiterWorldRank, const std::vector<WaitNeed>& needs)>;

  /// Called with every violation message just before the checker throws.
  /// WorldContext supplies its abort(): solver layers legitimately catch
  /// lisi::Error, and a caught diagnosis must still poison the world rather
  /// than degrade into a silently-failed solve.
  using ViolationReport = std::function<void(const std::string&)>;

  /// Render the waiter's queued messages ("{ctx=0 src=2 tag=17} ...") for
  /// deadlock reports, so a diagnosis shows not only what each stuck rank
  /// wants but what it actually has.
  using MailboxDump = std::function<std::string(int worldRank)>;

  WorldChecker(int worldSize, int maxUserTag, int collectiveTagWindow,
               QueueProbe probe, ViolationReport report, MailboxDump dump);

  // ---- communicator registry ----------------------------------------

  /// Record a communicator's membership and inherited collective tag window
  /// (called by every member; idempotent per ctx).  Translates local ranks
  /// for diagnostics, bounds the lockstep board's arrival counts, and seeds
  /// the per-context tag-space bound for the send lint.
  void onCommCreated(std::uint64_t ctx, const std::vector<int>& groupWorldRanks,
                     int collectiveTagWindow);

  /// The context's collective tag window changed (Comm::setCollectiveTagWindow):
  /// the send lint's per-context tag-space bound follows it.
  void onCommTagWindow(std::uint64_t ctx, int window);

  /// Attach a diagnostic label to a context (Comm::setLabel); rendered next
  /// to the ctx id in lockstep and deadlock reports.
  void onCommLabeled(std::uint64_t ctx, std::string label);

  // ---- 1. lockstep collective verification ---------------------------

  /// A rank is starting the collective at sequence position `seq` of
  /// communicator `ctx`, drawing `tagCount` tags beginning at `firstTag`.
  /// Cross-checks the signature against every other rank's call at the same
  /// position and records the issued tags for the tag lint.
  void onCollectiveStart(std::uint64_t ctx, int localRank, std::uint64_t seq,
                         int firstTag, int tagCount, const CollSignature& sig);

  // ---- 2. wait-for-graph deadlock detection --------------------------

  /// Declare that `worldRank` is (about to be) blocked until one of `needs`
  /// arrives, then run deadlock detection.  Overwrites any previous wait of
  /// the same rank (nonblocking-collective waits refresh their needs as ops
  /// progress).  Throws when the rank belongs to a closed set of waiters
  /// none of whom can be satisfied.
  void beginWait(int worldRank, const char* what, std::vector<WaitNeed> needs);

  /// The rank is no longer blocked.
  void endWait(int worldRank);

  /// The rank's registered wait has just been satisfied (it dequeued a
  /// matching message) but endWait has not run yet.  Lock-free — called
  /// under a mailbox mutex, where the checker mutex must not be taken — and
  /// closes the race where the detector would otherwise see a rank as
  /// blocked-with-an-empty-mailbox purely because it was preempted between
  /// consuming its message and leaving the wait scope.  This is the one
  /// sanctioned mutex_-free touch of guarded checker state: it writes only
  /// the per-rank `satisfied` atomic (see WaitState), so its definition
  /// carries NO_THREAD_SAFETY_ANALYSIS with this reason.
  void noteWaitSatisfied(int worldRank);

  // ---- 3. tag-space and handle lint ----------------------------------

  /// Lint one point-to-point send.  Throws for tags outside the tag space
  /// and for tags in the collective-internal range that were neither
  /// reserved on `ctx` nor issued to this rank's recent collectives.
  void onSend(std::uint64_t ctx, int localRank, int worldRank, int dest,
              int tag);

  /// A nonblocking collective started with user buffer [data, data+bytes);
  /// `outstanding` holds the user buffers of the rank's other in-flight
  /// ops.  Throws if the new buffer overlaps one of them.
  void onNonblockingStart(int worldRank, int tag, const void* data,
                          std::size_t bytes,
                          const std::vector<BufferRange>& outstanding);

  /// A CollHandle was destroyed (or its op completed); `completed` is the
  /// op's final state, `stepsLeft` the unexecuted schedule steps.
  void onNonblockingEnd(int worldRank, int tag, bool completed,
                        std::size_t stepsLeft);

  /// The rank's World::run body returned cleanly.  Throws if the rank still
  /// holds live (never-destroyed) CollHandles, then marks the rank exited
  /// and re-runs deadlock detection on behalf of the survivors: a rank
  /// blocked on an exited peer can never be satisfied.
  void onRankExit(int worldRank);

 private:
  struct BoardEntry {
    std::uint64_t hash = 0;
    CollSignature sig;
    int firstWorldRank = -1;
    int arrived = 0;
  };
  struct WaitState {
    bool blocked = false;
    const char* what = "";
    std::vector<WaitNeed> needs;
    /// Owner-thread store (noteWaitSatisfied), detector-thread load; the
    /// vector holding these is sized once in the constructor and never
    /// reallocates, so the atomics stay put.
    std::atomic<bool> satisfied{false};
  };
  struct RecentTag {
    std::uint64_t ctx = 0;
    int tag = -1;
  };
  /// One entry of a rank's recent-collective history, rendered into lockstep
  /// and deadlock reports so a diagnosis shows each rank's last few call
  /// sites, not just the single position where the streams collided.
  struct SigRecord {
    std::uint64_t ctx = 0;
    std::uint64_t seq = 0;
    CollSignature sig;
    bool valid = false;
  };
  struct ReservedBlock {
    std::uint64_t ctx = 0;
    int firstTag = 0;
    int count = 0;
  };
  struct RankHandles {
    std::vector<int> liveTags;        ///< started, not yet destroyed
    std::vector<int> abandonedTags;   ///< destroyed incomplete (documented-
                                      ///< legal; reported when it strands)
  };

  /// Deadlock analysis: compute the set of blocked ranks none of whom can
  /// be released (no satisfying message queued, every potential sender
  /// itself stuck or exited).  Throws, naming every member, if `aboutRank`
  /// is in the set (or, for exit sweeps with aboutRank < 0, if the set is
  /// nonempty).  Caller holds mutex_.
  void detectDeadlockLocked(int aboutRank, const std::string& prologue)
      LISI_REQUIRES(mutex_);

  /// Report `msg` through the violation callback, then throw lisi::Error.
  [[noreturn]] void fail(const std::string& msg) const;

  [[nodiscard]] bool tagReservedOnLocked(std::uint64_t ctx, int tag) const
      LISI_REQUIRES(mutex_);
  [[nodiscard]] std::string describeWaitLocked(int worldRank) const
      LISI_REQUIRES(mutex_);
  [[nodiscard]] std::string describeHistoryLocked(int worldRank) const
      LISI_REQUIRES(mutex_);
  [[nodiscard]] int worldRankOfLocked(std::uint64_t ctx, int localRank) const
      LISI_REQUIRES(mutex_);
  /// Tag window of `ctx` (the constructor's world default when unknown).
  [[nodiscard]] int windowOfLocked(std::uint64_t ctx) const
      LISI_REQUIRES(mutex_);
  /// "ctx=3 [session 1]" — the ctx id plus its label when one is set.
  [[nodiscard]] std::string ctxNameLocked(std::uint64_t ctx) const
      LISI_REQUIRES(mutex_);

  const int worldSize_;
  const int maxUserTag_;
  const int collectiveTagWindow_;
  const QueueProbe probe_;
  const ViolationReport report_;
  const MailboxDump dump_;

  mutable support::AnnotatedMutex mutex_
      LISI_ACQUIRED_BEFORE(detail::gCheckerBeforeMailboxAnchor);
  std::map<std::uint64_t, std::vector<int>> ctxGroups_ LISI_GUARDED_BY(mutex_);
  std::map<std::uint64_t, int> ctxWindows_ LISI_GUARDED_BY(mutex_);
  std::map<std::uint64_t, std::string> ctxLabels_ LISI_GUARDED_BY(mutex_);
  std::map<std::pair<std::uint64_t, std::uint64_t>, BoardEntry> board_
      LISI_GUARDED_BY(mutex_);
  /// The vector (sizing, element identity) is guarded; each element's
  /// `satisfied` atomic is additionally written lock-free by
  /// noteWaitSatisfied — the documented exception above.
  std::vector<WaitState> waits_ LISI_GUARDED_BY(mutex_);
  std::vector<bool> exited_ LISI_GUARDED_BY(mutex_);
  std::vector<std::array<RecentTag, 64>> recentTags_ LISI_GUARDED_BY(mutex_);
  std::vector<std::size_t> recentTagPos_ LISI_GUARDED_BY(mutex_);
  std::vector<std::array<SigRecord, 8>> history_ LISI_GUARDED_BY(mutex_);
  std::vector<std::size_t> historyPos_ LISI_GUARDED_BY(mutex_);
  std::vector<ReservedBlock> reserved_ LISI_GUARDED_BY(mutex_);
  std::vector<RankHandles> handles_ LISI_GUARDED_BY(mutex_);
};

}  // namespace lisi::comm::check
