// Central message-tag registry for every fixed point-to-point protocol in
// the repository.
//
// MiniMPI's tag space splits in two:
//
//   * User tags `[0, kMaxUserTag]` — available to applications and to the
//     library's own fixed protocols.  Every fixed protocol tag the library
//     uses is declared HERE, in one place, so a new protocol can claim a
//     value without grepping the tree for collisions (the static_asserts
//     below fail the build on overlap).
//   * Collective-internal tags `(kMaxUserTag, kMaxUserTag + 2^20]` — drawn
//     from a per-communicator sequence that all ranks advance in lockstep:
//     one per blocking collective step, one per nonblocking collective
//     handle, and `Comm::reserveCollectiveTags()` blocks for long-lived
//     protocols (e.g. a matrix's rotating spmv halo tags).  Never hard-code
//     a value in this range.
//
// Rationale for the split: fixed tags identify a *protocol* (any two
// messages with the same fixed tag belong to the same exchange pattern and
// rely on per-pair FIFO ordering), while sequence tags identify a protocol
// *instance* (two overlapping allreduces must not cross-match even between
// the same rank pair, so each draws a fresh tag).
#pragma once

#include "comm/comm.hpp"

namespace lisi::comm::tags {

// ---- fixed protocol tags (user-tag space) ------------------------------

/// DistCsrMatrix::scatterFromRoot block shipping (row lengths, columns,
/// values travel as three FIFO-ordered messages per rank pair).
inline constexpr int kMatrixScatter = 701;

/// distMatMul SpGEMM row traffic (src/sparse/matmul.cpp).
inline constexpr int kMatMulRowFetch = 702;

/// One-time halo-plan index exchange in DistCsrMatrix::buildHaloPlan.
inline constexpr int kHaloPlan = 703;

/// Matrix-free stencil halo exchange (examples/matrix_free.cpp): boundary
/// rows shipped to the previous / next block-row neighbour.  Two tags, one
/// per direction, so the up- and down-travelling rows of one exchange never
/// cross-match between the same rank pair.
inline constexpr int kStencilHaloToPrev = 704;
inline constexpr int kStencilHaloToNext = 705;

// ---- reserved-block sizes (collective-internal space) ------------------

/// Tags each DistCsrMatrix reserves for its spmv ghost exchange; per-spmv
/// traffic rotates through the block so overlapping spmv rounds on one
/// communicator cannot cross-match (src/sparse/dist_csr.cpp).
inline constexpr int kSpmvTagRounds = 16;

// ---- collision guards --------------------------------------------------

namespace detail {
inline constexpr int kFixedTags[] = {kMatrixScatter, kMatMulRowFetch,
                                     kHaloPlan, kStencilHaloToPrev,
                                     kStencilHaloToNext};

/// Fixed protocol tags live in one contiguous registry block so an
/// application scanning this header can pick a clear value at a glance.
inline constexpr int kRegistryBlockFirst = 700;
inline constexpr int kRegistryBlockLast = 799;

constexpr bool allInUserRange() {
  for (const int t : kFixedTags) {
    if (t < 0 || t > kMaxUserTag) return false;
  }
  return true;
}

constexpr bool allInRegistryBlock() {
  for (const int t : kFixedTags) {
    if (t < kRegistryBlockFirst || t > kRegistryBlockLast) return false;
  }
  return true;
}

constexpr bool allDistinct() {
  const int n = static_cast<int>(sizeof(kFixedTags) / sizeof(kFixedTags[0]));
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (kFixedTags[i] == kFixedTags[j]) return false;
    }
  }
  return true;
}
}  // namespace detail

static_assert(detail::allInUserRange(),
              "fixed protocol tags must lie in the user-tag space");
static_assert(detail::allDistinct(),
              "fixed protocol tags must be pairwise distinct");
static_assert(detail::allInRegistryBlock(),
              "fixed protocol tags must stay inside the registry block "
              "[700, 799] — claim the next free value, do not scatter");
static_assert(kSpmvTagRounds > 0, "spmv needs at least one reserved tag");
static_assert(detail::kRegistryBlockLast < kMaxUserTag,
              "the registry block must sit strictly inside user tag space");

}  // namespace lisi::comm::tags
