#include "comm/comm_handle.hpp"

#include <mutex>
#include <unordered_map>

#include "support/thread_annotations.hpp"

namespace lisi::comm {
namespace {

struct Registry {
  support::AnnotatedMutex mutex;
  std::unordered_map<long, Comm> comms LISI_GUARDED_BY(mutex);
  long next LISI_GUARDED_BY(mutex) = 1;
};

Registry& registry() {
  static Registry instance;
  return instance;
}

}  // namespace

long registerHandle(const Comm& comm) {
  LISI_CHECK(comm.valid(), "registerHandle: invalid communicator");
  Registry& reg = registry();
  support::MutexLock lock(reg.mutex);
  const long handle = reg.next++;
  reg.comms.emplace(handle, comm);
  return handle;
}

Comm commFromHandle(long handle) {
  Registry& reg = registry();
  support::MutexLock lock(reg.mutex);
  auto it = reg.comms.find(handle);
  LISI_CHECK(it != reg.comms.end(),
             "commFromHandle: unknown handle " + std::to_string(handle));
  return it->second;
}

void releaseHandle(long handle) {
  Registry& reg = registry();
  support::MutexLock lock(reg.mutex);
  reg.comms.erase(handle);
}

std::size_t liveHandleCount() {
  Registry& reg = registry();
  support::MutexLock lock(reg.mutex);
  return reg.comms.size();
}

}  // namespace lisi::comm
