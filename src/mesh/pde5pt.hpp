// Parallel mesh data generator for the paper's test problem (§8):
//
//   u_xx + u_yy - 3 u_x = f   on the unit square,
//   u = g on the boundary (Dirichlet),  f = (2 - 6x - x^2) * sin(x),
//
// discretized with 5-point centered differences on an N-by-N grid of
// interior unknowns (h = 1/(N+1), natural row-major ordering).  The
// assembled operator is negated so A = -L is an M-matrix with positive
// diagonal (the usual convention; the solution is unchanged because the
// right-hand side is negated too).
//
// Row counts reproduce the paper's table: nnz(A) = 5*N^2 - 4*N, so
// N = 50, 100, 200, 300, 400 gives 12300, 49600, 199200, 448800, 798400.
//
// The generator is SPMD: each rank assembles only its block of rows
// (conformal block-row partition of A, b and x — §8[a]).
#pragma once

#include <functional>
#include <span>

#include "sparse/formats.hpp"
#include "sparse/partition.hpp"

namespace lisi::mesh {

/// Scalar field on the unit square.
using Field2d = std::function<double(double, double)>;

/// The paper's forcing function f = (2 - 6x - x^2) sin(x).
double paperForcing(double x, double y);

/// Zero boundary data (the paper's experiments fix Dirichlet data; we use
/// the homogeneous case for the benchmark problem).
double zeroBoundary(double x, double y);

/// Problem description: PDE coefficients are fixed (u_xx + u_yy - 3 u_x);
/// forcing and boundary data are pluggable for manufactured-solution tests.
struct Pde5ptSpec {
  int gridN = 0;                    ///< interior unknowns per side
  Field2d forcing = paperForcing;   ///< f(x, y)
  Field2d boundary = zeroBoundary;  ///< g(x, y) on the boundary
};

/// One rank's share of the assembled linear system.
struct Pde5ptLocalSystem {
  int globalN = 0;    ///< total unknowns = gridN^2
  int startRow = 0;   ///< first owned global row
  sparse::CsrMatrix localA;     ///< owned rows, global column indices
  std::vector<double> localB;   ///< owned right-hand side entries
};

/// Total nonzeros of the N-by-N 5-point operator: 5N^2 - 4N.
long long pde5ptNnz(int gridN);

/// Assemble rank `rank`'s block of rows under the near-even block-row
/// partition of gridN^2 unknowns over `nranks` ranks.  Pure function of its
/// arguments — each rank generates its own data with no communication,
/// exactly like the paper's parallel mesh generator component.
Pde5ptLocalSystem assembleLocal(const Pde5ptSpec& spec, int rank, int nranks);

/// Assemble the full system serially (testing / non-CCA baselines).
Pde5ptLocalSystem assembleGlobal(const Pde5ptSpec& spec);

/// Evaluate a field at every interior grid point in row-major order
/// (used to compare a discrete solution against a manufactured solution).
std::vector<double> sampleField(int gridN, const Field2d& field);

/// Manufactured solution helpers: u*(x,y) = sin(pi x) sin(pi y), with the
/// matching forcing for u_xx + u_yy - 3 u_x = f and boundary g = 0.
double manufacturedSolution(double x, double y);
double manufacturedForcing(double x, double y);

}  // namespace lisi::mesh
