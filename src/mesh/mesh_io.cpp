#include "mesh/mesh_io.hpp"

#include <filesystem>
#include <fstream>
#include <iomanip>

#include "support/error.hpp"

namespace lisi::mesh {

std::string localSystemPath(const std::string& dir, int rank) {
  return dir + "/mesh_rank" + std::to_string(rank) + ".dat";
}

void writeLocalSystem(const std::string& dir, int rank,
                      const Pde5ptLocalSystem& sys) {
  std::filesystem::create_directories(dir);
  const std::string path = localSystemPath(dir, rank);
  std::ofstream os(path);
  LISI_CHECK(os.good(), "cannot open mesh file for write: " + path);
  os << "lisi-mesh 1\n";
  os << sys.globalN << ' ' << sys.startRow << ' ' << sys.localA.rows << ' '
     << sys.localA.nnz() << '\n';
  os << std::setprecision(17);
  for (std::size_t i = 0; i < sys.localA.rowPtr.size(); ++i) {
    os << sys.localA.rowPtr[i] << '\n';
  }
  for (int k = 0; k < sys.localA.nnz(); ++k) {
    os << sys.localA.colIdx[static_cast<std::size_t>(k)] << ' '
       << sys.localA.values[static_cast<std::size_t>(k)] << '\n';
  }
  for (double b : sys.localB) os << b << '\n';
  LISI_CHECK(os.good(), "mesh file write failed: " + path);
}

Pde5ptLocalSystem readLocalSystem(const std::string& dir, int rank) {
  const std::string path = localSystemPath(dir, rank);
  std::ifstream is(path);
  LISI_CHECK(is.good(), "cannot open mesh file for read: " + path);
  std::string magic;
  int version = 0;
  is >> magic >> version;
  LISI_CHECK(magic == "lisi-mesh" && version == 1,
             "bad mesh file header: " + path);
  Pde5ptLocalSystem sys;
  int localRows = 0;
  int nnz = 0;
  is >> sys.globalN >> sys.startRow >> localRows >> nnz;
  LISI_CHECK(static_cast<bool>(is) && localRows >= 0 && nnz >= 0,
             "bad mesh file size line: " + path);
  sys.localA.rows = localRows;
  sys.localA.cols = sys.globalN;
  sys.localA.rowPtr.resize(static_cast<std::size_t>(localRows) + 1);
  for (auto& p : sys.localA.rowPtr) is >> p;
  sys.localA.colIdx.resize(static_cast<std::size_t>(nnz));
  sys.localA.values.resize(static_cast<std::size_t>(nnz));
  for (int k = 0; k < nnz; ++k) {
    is >> sys.localA.colIdx[static_cast<std::size_t>(k)] >>
        sys.localA.values[static_cast<std::size_t>(k)];
  }
  sys.localB.resize(static_cast<std::size_t>(localRows));
  for (auto& b : sys.localB) is >> b;
  LISI_CHECK(static_cast<bool>(is), "truncated mesh file: " + path);
  sys.localA.check();
  return sys;
}

}  // namespace lisi::mesh
