// Per-rank mesh data files.
//
// §8[a]: "Mesh data files are written out on each compute node locally for
// faster data input."  Each rank persists its block of the assembled system
// (local A rows, local b, and the partition metadata) and can reload it
// without touching other ranks' files.
#pragma once

#include <string>

#include "mesh/pde5pt.hpp"

namespace lisi::mesh {

/// File-name of rank `rank`'s local system inside `dir`.
std::string localSystemPath(const std::string& dir, int rank);

/// Write one rank's local system to `dir` (creates `dir` if needed).
void writeLocalSystem(const std::string& dir, int rank,
                      const Pde5ptLocalSystem& sys);

/// Load one rank's local system back.
Pde5ptLocalSystem readLocalSystem(const std::string& dir, int rank);

}  // namespace lisi::mesh
