#include "mesh/pde5pt.hpp"

#include <cmath>

namespace lisi::mesh {

double paperForcing(double x, double y) {
  (void)y;
  return (2.0 - 6.0 * x - x * x) * std::sin(x);
}

double zeroBoundary(double x, double y) {
  (void)x;
  (void)y;
  return 0.0;
}

long long pde5ptNnz(int gridN) {
  return 5LL * gridN * gridN - 4LL * gridN;
}

namespace {

/// Assemble rows [rowBegin, rowEnd) of A = -(u_xx + u_yy - 3 u_x) and the
/// matching right-hand side b = -f + boundary lift.
Pde5ptLocalSystem assembleRange(const Pde5ptSpec& spec, int rowBegin,
                                int rowEnd) {
  const int n = spec.gridN;
  LISI_CHECK(n >= 1, "Pde5ptSpec: gridN must be >= 1");
  const int globalN = n * n;
  LISI_CHECK(0 <= rowBegin && rowBegin <= rowEnd && rowEnd <= globalN,
             "assembleRange: bad row range");
  const double h = 1.0 / (n + 1);
  // Stencil of A = -L (positive diagonal M-matrix):
  //   center   +4/h^2
  //   west     -(1/h^2 + 3/(2h))   (x - h)
  //   east     -(1/h^2 - 3/(2h))   (x + h)
  //   south    -1/h^2              (y - h)
  //   north    -1/h^2              (y + h)
  const double invH2 = 1.0 / (h * h);
  const double cCenter = 4.0 * invH2;
  const double cWest = -(invH2 + 1.5 / h);
  const double cEast = -(invH2 - 1.5 / h);
  const double cNS = -invH2;

  Pde5ptLocalSystem sys;
  sys.globalN = globalN;
  sys.startRow = rowBegin;
  sys.localA.rows = rowEnd - rowBegin;
  sys.localA.cols = globalN;
  sys.localA.rowPtr.reserve(static_cast<std::size_t>(sys.localA.rows) + 1);
  sys.localA.rowPtr.push_back(0);
  sys.localB.reserve(static_cast<std::size_t>(sys.localA.rows));

  auto nodeX = [h](int ix) { return (ix + 1) * h; };
  auto nodeY = [h](int iy) { return (iy + 1) * h; };

  for (int row = rowBegin; row < rowEnd; ++row) {
    const int ix = row % n;
    const int iy = row / n;
    const double x = nodeX(ix);
    const double y = nodeY(iy);
    double b = -spec.forcing(x, y);

    // Emit in global column order: south, west, center, east, north.
    if (iy > 0) {
      sys.localA.colIdx.push_back(row - n);
      sys.localA.values.push_back(cNS);
    } else {
      b -= cNS * spec.boundary(x, 0.0);
    }
    if (ix > 0) {
      sys.localA.colIdx.push_back(row - 1);
      sys.localA.values.push_back(cWest);
    } else {
      b -= cWest * spec.boundary(0.0, y);
    }
    sys.localA.colIdx.push_back(row);
    sys.localA.values.push_back(cCenter);
    if (ix + 1 < n) {
      sys.localA.colIdx.push_back(row + 1);
      sys.localA.values.push_back(cEast);
    } else {
      b -= cEast * spec.boundary(1.0, y);
    }
    if (iy + 1 < n) {
      sys.localA.colIdx.push_back(row + n);
      sys.localA.values.push_back(cNS);
    } else {
      b -= cNS * spec.boundary(x, 1.0);
    }
    sys.localA.rowPtr.push_back(static_cast<int>(sys.localA.colIdx.size()));
    sys.localB.push_back(b);
  }
  return sys;
}

}  // namespace

Pde5ptLocalSystem assembleLocal(const Pde5ptSpec& spec, int rank, int nranks) {
  const sparse::BlockRowPartition part(spec.gridN * spec.gridN, nranks);
  const int begin = part.startRow(rank);
  return assembleRange(spec, begin, begin + part.localRows(rank));
}

Pde5ptLocalSystem assembleGlobal(const Pde5ptSpec& spec) {
  return assembleRange(spec, 0, spec.gridN * spec.gridN);
}

std::vector<double> sampleField(int gridN, const Field2d& field) {
  const double h = 1.0 / (gridN + 1);
  std::vector<double> v;
  v.reserve(static_cast<std::size_t>(gridN) * static_cast<std::size_t>(gridN));
  for (int iy = 0; iy < gridN; ++iy) {
    for (int ix = 0; ix < gridN; ++ix) {
      v.push_back(field((ix + 1) * h, (iy + 1) * h));
    }
  }
  return v;
}

double manufacturedSolution(double x, double y) {
  return std::sin(M_PI * x) * std::sin(M_PI * y);
}

double manufacturedForcing(double x, double y) {
  // L u = u_xx + u_yy - 3 u_x for u = sin(pi x) sin(pi y).
  const double s = std::sin(M_PI * x) * std::sin(M_PI * y);
  const double ux = M_PI * std::cos(M_PI * x) * std::sin(M_PI * y);
  return -2.0 * M_PI * M_PI * s - 3.0 * ux;
}

}  // namespace lisi::mesh
