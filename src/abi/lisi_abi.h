/* lisi_abi.h — the stable C ABI plugin boundary for LISI solver backends.
 *
 * This header is the ONLY file a plugin needs: it is plain C (C99), has no
 * dependency beyond <stdint.h>, and is versioned as a whole.  A plugin is a
 * shared object exporting one symbol, lisi_plugin_query, which returns a
 * lisi_abi_v1 function table; the host (src/plugin) dlopens the object,
 * negotiates the version, and adapts the table onto the C++ SparseSolver
 * port so plugin backends are indistinguishable from built-ins.
 *
 * Design rules (the normative spec is docs/PLUGIN_ABI.md):
 *   - opaque handles:     the solver instance is a void* the plugin owns;
 *   - C data only:        local CSR blocks, double arrays, and string
 *                         key/value options are the only types crossing;
 *   - error codes:        every function returns int32_t, never throws or
 *                         longjmps across the boundary;
 *   - host callbacks:     the distributed pieces (operator application,
 *                         global reductions) are host-provided function
 *                         pointers, so a plugin needs no MPI, no comm
 *                         library — nothing but this header.
 */
#ifndef LISI_ABI_H
#define LISI_ABI_H

#include <stdint.h>

#ifdef __cplusplus
extern "C" {
#endif

/* The ABI revision this header describes.  Incompatible changes bump the
 * number and add a new table type; lisi_abi_v1 itself is frozen. */
#define LISI_ABI_VERSION 1u

/* Error codes.  Values mirror lisi::ErrorCode on the host side so the
 * adapter's translation is the identity on the shared range. */
#define LISI_ABI_OK 0               /* success */
#define LISI_ABI_ERR_ARG 1          /* bad argument or bad option value */
#define LISI_ABI_ERR_STATE 2        /* call out of lifecycle order */
#define LISI_ABI_ERR_UNSUPPORTED 3  /* unknown option KEY (host skips it) */
#define LISI_ABI_ERR_NUMERIC 4      /* numeric failure (zero pivot, ...) */
#define LISI_ABI_ERR_INTERNAL 5     /* anything else */

/* Host services passed to create().  The pointer stays valid until
 * destroy(); the callbacks may only be invoked from inside solve(), on the
 * thread that called solve() — both are collective over the ranks of the
 * communicator the owning component was initialized with.
 */
typedef struct lisi_abi_host_v1 {
  /* Opaque host context: pass it back as the first callback argument. */
  void* ctx;
  /* This rank and the number of ranks in the solve communicator. */
  int32_t rank;
  int32_t nranks;
  /* y = A x over this rank's rows (x and y are local_rows long).  The host
   * owns the assembled distributed operator and its halo exchange, so a
   * plugin needs no communication code of its own.  Collective. */
  int32_t (*apply_operator)(void* ctx, const double* x, double* y,
                            int32_t local_rows);
  /* Element-wise global sum of in[0..n) into out[0..n).  Lanes reduce
   * independently (fusing dots never changes a lane's bits).  Collective. */
  int32_t (*allreduce_sum)(void* ctx, const double* in, double* out,
                           int32_t n);
} lisi_abi_host_v1;

/* Per-solve results, filled by solve(). */
typedef struct lisi_abi_solve_info_v1 {
  int32_t iterations;    /* iterations taken (0 for direct solvers) */
  int32_t converged;     /* 1 converged, 0 not */
  double residual_norm;  /* the norm the method tracked at exit */
} lisi_abi_solve_info_v1;

/* The v1 function table.  All pointers must be non-NULL; the host rejects
 * a table with a hole.  Lifecycle: create -> set_option* -> set_operator ->
 * (set_option* | solve | get_info)* -> destroy; set_operator may be called
 * again at any point to refresh or replace the operator. */
typedef struct lisi_abi_v1 {
  /* Must equal LISI_ABI_VERSION; the host cross-checks it against the
   * version it asked lisi_plugin_query for. */
  uint32_t abi_version;
  /* Registry name: the host registers the backend as "plugin.<solver_name>".
   * Must be non-empty, stable for the lifetime of the process. */
  const char* solver_name;
  /* Free-form version string, diagnostics only. */
  const char* solver_version;

  /* Create a solver instance.  `host` stays valid until destroy().  On
   * success *solver is the opaque instance handle. */
  int32_t (*create)(const lisi_abi_host_v1* host, void** solver);
  /* String-keyed option (the LIS lis_solver_set_option idiom).  Return
   * LISI_ABI_ERR_UNSUPPORTED for keys you do not recognize — the host
   * forwards its whole table and skips unsupported keys; any other nonzero
   * code aborts the solve.  A recognized key with a bad value is
   * LISI_ABI_ERR_ARG. */
  int32_t (*set_option)(void* solver, const char* key, const char* value);
  /* This rank's block of rows as CSR: row_ptr has local_rows+1 entries
   * (row_ptr[0] == 0), col_idx/values have row_ptr[local_rows] entries, and
   * column indices are GLOBAL.  The arrays are owned by the host and valid
   * only during the call — copy what you keep.  Distributed operator
   * application goes through host->apply_operator; the CSR block is for
   * local analysis (preconditioners, orderings, diagonals). */
  int32_t (*set_operator)(void* solver, int32_t local_rows,
                          int32_t global_rows, int32_t start_row,
                          const int32_t* row_ptr, const int32_t* col_idx,
                          const double* values);
  /* Solve A x = b for this rank's block; x carries the initial guess in and
   * the solution out.  Fill *info (non-convergence is reported there with
   * LISI_ABI_OK, matching the host's status-array contract; reserve
   * LISI_ABI_ERR_NUMERIC for failures that invalidate the setup, e.g. a
   * zero pivot).  Collective. */
  int32_t (*solve)(void* solver, const double* b, double* x,
                   int32_t local_rows, lisi_abi_solve_info_v1* info);
  /* Named scalar statistics after a solve: "iterations", "residual_norm",
   * "converged" are the required keys; LISI_ABI_ERR_UNSUPPORTED otherwise. */
  int32_t (*get_info)(void* solver, const char* key, double* value);
  /* Destroy the instance and everything it owns.  Never called during a
   * solve(). */
  int32_t (*destroy)(void* solver);
} lisi_abi_v1;

/* The single exported entry point every plugin defines:
 *
 *   const lisi_abi_v1* lisi_plugin_query(uint32_t abi_version);
 *
 * Return the table if you implement `abi_version`, NULL to decline (the
 * host reports the refusal by name instead of crashing into a mismatched
 * struct layout).  Must be safe to call multiple times. */
#define LISI_PLUGIN_QUERY_SYMBOL "lisi_plugin_query"
typedef const lisi_abi_v1* (*lisi_plugin_query_fn)(uint32_t abi_version);

#ifdef __cplusplus
} /* extern "C" */
#endif

#endif /* LISI_ABI_H */
