// HyMG implementation: hierarchy construction, smoothers, grid transfers,
// the recursive cycle, and the coarse-grid dense solve.
#include "hymg/hymg.hpp"

#include "obs/obs.hpp"

#include <algorithm>
#include <cmath>

#include "sparse/matmul.hpp"
#include "sparse/partition.hpp"
#include "support/prec.hpp"

namespace hymg {

using lisi::comm::Comm;
using lisi::sparse::BlockRowPartition;
using lisi::sparse::CsrMatrix;
using lisi::sparse::DistCsrMatrix;

Stencil5 laplaceStencil(double h) {
  const double ih2 = 1.0 / (h * h);
  return {4.0 * ih2, -ih2, -ih2, -ih2, -ih2};
}

StencilFn convectionDiffusionStencil(double bx, double by) {
  return [bx, by](double h) {
    const double ih2 = 1.0 / (h * h);
    Stencil5 st;
    st.c = 4.0 * ih2;
    st.w = -ih2 - bx / (2.0 * h);
    st.e = -ih2 + bx / (2.0 * h);
    st.s = -ih2 - by / (2.0 * h);
    st.n = -ih2 + by / (2.0 * h);
    return st;
  };
}

namespace {

/// Assemble this rank's rows of the 5-point operator on an n-by-n grid.
CsrMatrix assembleLevelRows(int n, const Stencil5& st, int rowBegin,
                            int rowEnd) {
  CsrMatrix a;
  a.rows = rowEnd - rowBegin;
  a.cols = n * n;
  a.rowPtr.reserve(static_cast<std::size_t>(a.rows) + 1);
  a.rowPtr.push_back(0);
  for (int row = rowBegin; row < rowEnd; ++row) {
    const int ix = row % n;
    const int iy = row / n;
    if (iy > 0) {
      a.colIdx.push_back(row - n);
      a.values.push_back(st.s);
    }
    if (ix > 0) {
      a.colIdx.push_back(row - 1);
      a.values.push_back(st.w);
    }
    a.colIdx.push_back(row);
    a.values.push_back(st.c);
    if (ix + 1 < n) {
      a.colIdx.push_back(row + 1);
      a.values.push_back(st.e);
    }
    if (iy + 1 < n) {
      a.colIdx.push_back(row + n);
      a.values.push_back(st.n);
    }
    a.rowPtr.push_back(static_cast<int>(a.colIdx.size()));
  }
  return a;
}

/// Assemble this rank's rows of the bilinear prolongation from an nc-by-nc
/// coarse grid to the nf-by-nf fine grid (nf = 2*nc + 1).  Coarse node
/// (jx, jy) sits at fine node (2jx+1, 2jy+1); out-of-range coarse
/// neighbours are homogeneous boundary (contribute nothing).
CsrMatrix assembleProlongationRows(int nf, int nc, int rowBegin, int rowEnd) {
  CsrMatrix p;
  p.rows = rowEnd - rowBegin;
  p.cols = nc * nc;
  p.rowPtr.reserve(static_cast<std::size_t>(p.rows) + 1);
  p.rowPtr.push_back(0);
  auto push = [&p, nc](int jx, int jy, double wgt) {
    if (jx < 0 || jx >= nc || jy < 0 || jy >= nc) return;
    p.colIdx.push_back(jy * nc + jx);
    p.values.push_back(wgt);
  };
  for (int row = rowBegin; row < rowEnd; ++row) {
    const int ix = row % nf;
    const int iy = row / nf;
    const bool oddX = (ix % 2) == 1;
    const bool oddY = (iy % 2) == 1;
    if (oddX && oddY) {
      push((ix - 1) / 2, (iy - 1) / 2, 1.0);
    } else if (!oddX && oddY) {
      push(ix / 2 - 1, (iy - 1) / 2, 0.5);
      push(ix / 2, (iy - 1) / 2, 0.5);
    } else if (oddX && !oddY) {
      push((ix - 1) / 2, iy / 2 - 1, 0.5);
      push((ix - 1) / 2, iy / 2, 0.5);
    } else {
      push(ix / 2 - 1, iy / 2 - 1, 0.25);
      push(ix / 2, iy / 2 - 1, 0.25);
      push(ix / 2 - 1, iy / 2, 0.25);
      push(ix / 2, iy / 2, 0.25);
    }
    p.rowPtr.push_back(static_cast<int>(p.colIdx.size()));
  }
  return p;
}

/// Assemble this rank's rows of the full-weighting restriction from the
/// nf-by-nf fine grid to the nc-by-nc coarse grid: the 1/16 [1 2 1; 2 4 2;
/// 1 2 1] stencil centered on the fine image of each coarse node.
CsrMatrix assembleRestrictionRows(int nf, int nc, int rowBegin, int rowEnd) {
  CsrMatrix r;
  r.rows = rowEnd - rowBegin;
  r.cols = nf * nf;
  r.rowPtr.reserve(static_cast<std::size_t>(r.rows) + 1);
  r.rowPtr.push_back(0);
  for (int row = rowBegin; row < rowEnd; ++row) {
    const int jx = row % nc;
    const int jy = row / nc;
    const int cx = 2 * jx + 1;
    const int cy = 2 * jy + 1;
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dx = -1; dx <= 1; ++dx) {
        const int ix = cx + dx;
        const int iy = cy + dy;
        if (ix < 0 || ix >= nf || iy < 0 || iy >= nf) continue;
        const double wgt =
            (dx == 0 ? 2.0 : 1.0) * (dy == 0 ? 2.0 : 1.0) / 16.0;
        r.colIdx.push_back(iy * nf + ix);
        r.values.push_back(wgt);
      }
    }
    r.rowPtr.push_back(static_cast<int>(r.colIdx.size()));
  }
  return r;
}

/// Dense LU with partial pivoting for the coarsest grid (run on rank 0).
class DenseLu {
 public:
  DenseLu() = default;
  void factor(std::vector<double> a, int n) {
    n_ = n;
    a_ = std::move(a);
    piv_.resize(static_cast<std::size_t>(n));
    for (int k = 0; k < n; ++k) {
      int p = k;
      double best = std::abs(at(k, k));
      for (int i = k + 1; i < n; ++i) {
        if (std::abs(at(i, k)) > best) {
          best = std::abs(at(i, k));
          p = i;
        }
      }
      LISI_CHECK(best > 0.0, "HyMG coarse solve: singular coarse operator");
      piv_[static_cast<std::size_t>(k)] = p;
      if (p != k) {
        for (int j = 0; j < n; ++j) std::swap(at(k, j), at(p, j));
      }
      for (int i = k + 1; i < n; ++i) {
        at(i, k) /= at(k, k);
        const double lik = at(i, k);
        for (int j = k + 1; j < n; ++j) at(i, j) -= lik * at(k, j);
      }
    }
    // Keep an existing float32 mirror in sync with the refreshed factors.
    if (!aF_.empty()) mirrorToFloat();
  }

  void solve(std::vector<double>& b) const {
    for (int k = 0; k < n_; ++k) {
      std::swap(b[static_cast<std::size_t>(k)],
                b[static_cast<std::size_t>(piv_[static_cast<std::size_t>(k)])]);
      for (int i = k + 1; i < n_; ++i) {
        b[static_cast<std::size_t>(i)] -= at(i, k) * b[static_cast<std::size_t>(k)];
      }
    }
    for (int k = n_ - 1; k >= 0; --k) {
      for (int j = k + 1; j < n_; ++j) {
        b[static_cast<std::size_t>(k)] -= at(k, j) * b[static_cast<std::size_t>(j)];
      }
      b[static_cast<std::size_t>(k)] /= at(k, k);
    }
  }

  /// Mirror the factored matrix into float32 for the low-precision cycle
  /// (pivoting already happened in float64; only the application rounds).
  void mirrorToFloat() { aF_.assign(a_.begin(), a_.end()); }
  void dropFloatMirror() { aF_.clear(); }

  void solveF(std::vector<float>& b) const {
    for (int k = 0; k < n_; ++k) {
      std::swap(b[static_cast<std::size_t>(k)],
                b[static_cast<std::size_t>(piv_[static_cast<std::size_t>(k)])]);
      for (int i = k + 1; i < n_; ++i) {
        b[static_cast<std::size_t>(i)] -= atF(i, k) * b[static_cast<std::size_t>(k)];
      }
    }
    for (int k = n_ - 1; k >= 0; --k) {
      for (int j = k + 1; j < n_; ++j) {
        b[static_cast<std::size_t>(k)] -= atF(k, j) * b[static_cast<std::size_t>(j)];
      }
      b[static_cast<std::size_t>(k)] /= atF(k, k);
    }
  }

 private:
  double& at(int i, int j) {
    return a_[static_cast<std::size_t>(i) * static_cast<std::size_t>(n_) +
              static_cast<std::size_t>(j)];
  }
  [[nodiscard]] double at(int i, int j) const {
    return a_[static_cast<std::size_t>(i) * static_cast<std::size_t>(n_) +
              static_cast<std::size_t>(j)];
  }
  [[nodiscard]] float atF(int i, int j) const {
    return aF_[static_cast<std::size_t>(i) * static_cast<std::size_t>(n_) +
               static_cast<std::size_t>(j)];
  }
  int n_ = 0;
  std::vector<double> a_;
  std::vector<float> aF_;
  std::vector<int> piv_;
};

struct Level {
  int n = 0;  ///< grid side
  std::unique_ptr<DistCsrMatrix> a;
  std::unique_ptr<DistCsrMatrix> p;  ///< prolongation from the next level
  std::unique_ptr<DistCsrMatrix> r;  ///< restriction to the next level
  std::vector<double> invDiag;       ///< Jacobi smoother data
  // Hybrid GS data: local diagonal block in local indices.
  CsrMatrix gsBlock;
  std::vector<int> gsDiagPos;
  // Per-level solve scratch, sized once in build() so smooth()/cycle()
  // never allocate (same discipline as the DistCsrMatrix halo plan).
  // Mutable: the solve path is const, and each rank owns its Solver.
  mutable std::vector<double> smoothR;  ///< smoother residual, fine size
  mutable std::vector<double> cycR;     ///< cycle residual, fine size
  mutable std::vector<double> cycPe;    ///< prolongated correction, fine size
  mutable std::vector<double> cycRc;    ///< restricted residual, coarse size
  mutable std::vector<double> cycEc;    ///< coarse correction, coarse size
  // Float32 mirrors of the smoother data and the cycle scratch for the
  // low-precision cycle (Solver::setLowPrecision); empty in float64 mode.
  // Operator/transfer values are mirrored inside DistCsrMatrix (spmvFloat).
  std::vector<float> invDiagF;
  std::vector<float> gsValsF;
  mutable std::vector<float> smoothRF;
  mutable std::vector<float> cycRF;
  mutable std::vector<float> cycPeF;
  mutable std::vector<float> cycRcF;
  mutable std::vector<float> cycEcF;
};

}  // namespace

struct Solver::Impl {
  Comm comm;
  Options options;
  StencilFn stencil;
  std::vector<Level> levels;
  DenseLu coarseLu;  ///< valid on rank 0 only
  bool lowPrecision = false;
  // Finest-level defect/correction buffers for the float32 cycle.
  mutable std::vector<float> fineBF, fineXF;

  void build(int gridN);
  void refreshValues();
  void factorCoarse();
  void mirrorLowPrecision();
  void smooth(const Level& lvl, std::span<const double> b,
              std::span<double> x, int sweeps) const;
  void cycle(std::size_t l, std::span<const double> b,
             std::span<double> x) const;
  void coarseSolve(std::span<const double> b, std::span<double> x) const;
  void smoothF(const Level& lvl, std::span<const float> b,
               std::span<float> x, int sweeps) const;
  void cycleF(std::size_t l, std::span<const float> b,
              std::span<float> x) const;
  void coarseSolveF(std::span<const float> b, std::span<float> x) const;
};

void Solver::Impl::build(int gridN) {
  LISI_CHECK(gridN >= 1, "HyMG: gridN must be >= 1");
  int n = gridN;
  // In Galerkin mode the next level's operator is the triple product of the
  // previous level's transfers; it is carried across loop iterations here.
  std::unique_ptr<DistCsrMatrix> pendingA;
  while (true) {
    Level lvl;
    lvl.n = n;
    const double h = 1.0 / (n + 1);
    const BlockRowPartition part(n * n, comm.size());
    const int begin = part.startRow(comm.rank());
    const int end = begin + part.localRows(comm.rank());
    if (pendingA) {
      lvl.a = std::move(pendingA);
    } else {
      const Stencil5 st = stencil(h);
      lvl.a = std::make_unique<DistCsrMatrix>(
          comm, n * n, n * n, begin, assembleLevelRows(n, st, begin, end));
    }
    // Smoother data.
    lvl.invDiag = lvl.a->localDiagonal();
    for (double& d : lvl.invDiag) {
      LISI_CHECK(d != 0.0, "HyMG: zero diagonal on a level");
      d = 1.0 / d;
    }
    if (options.smoother == Smoother::kHybridGs) {
      // Local diagonal block with local column indices.
      const CsrMatrix& loc = lvl.a->localBlock();
      const int s = lvl.a->startRow();
      const int e = s + lvl.a->localRows();
      CsrMatrix blk;
      blk.rows = lvl.a->localRows();
      blk.cols = blk.rows;
      blk.rowPtr.assign(static_cast<std::size_t>(blk.rows) + 1, 0);
      for (int i = 0; i < loc.rows; ++i) {
        for (int k = loc.rowPtr[static_cast<std::size_t>(i)];
             k < loc.rowPtr[static_cast<std::size_t>(i) + 1]; ++k) {
          const int c = loc.colIdx[static_cast<std::size_t>(k)];
          if (c >= s && c < e) {
            blk.colIdx.push_back(c - s);
            blk.values.push_back(loc.values[static_cast<std::size_t>(k)]);
          }
        }
        blk.rowPtr[static_cast<std::size_t>(i) + 1] =
            static_cast<int>(blk.values.size());
      }
      lvl.gsDiagPos.assign(static_cast<std::size_t>(blk.rows), -1);
      for (int i = 0; i < blk.rows; ++i) {
        for (int k = blk.rowPtr[static_cast<std::size_t>(i)];
             k < blk.rowPtr[static_cast<std::size_t>(i) + 1]; ++k) {
          if (blk.colIdx[static_cast<std::size_t>(k)] == i) {
            lvl.gsDiagPos[static_cast<std::size_t>(i)] = k;
          }
        }
        LISI_CHECK(lvl.gsDiagPos[static_cast<std::size_t>(i)] >= 0,
                   "HyMG: missing diagonal in local block");
      }
      lvl.gsBlock = std::move(blk);
    }
    levels.push_back(std::move(lvl));

    const bool canCoarsen = (n % 2 == 1) && n > options.coarsestN &&
                            static_cast<int>(levels.size()) < options.maxLevels;
    if (!canCoarsen) break;
    const int nc = (n - 1) / 2;
    // Transfer operators between this level (fine) and the next (coarse).
    const BlockRowPartition fpart(n * n, comm.size());
    const BlockRowPartition cpart(nc * nc, comm.size());
    const int fb = fpart.startRow(comm.rank());
    const int fe = fb + fpart.localRows(comm.rank());
    const int cb = cpart.startRow(comm.rank());
    const int ce = cb + cpart.localRows(comm.rank());
    Level& fine = levels.back();
    fine.p = std::make_unique<DistCsrMatrix>(
        comm, n * n, nc * nc, fb, assembleProlongationRows(n, nc, fb, fe),
        cpart.boundaries());
    fine.r = std::make_unique<DistCsrMatrix>(
        comm, nc * nc, n * n, cb, assembleRestrictionRows(n, nc, cb, ce),
        fpart.boundaries());
    if (options.coarseOperator == CoarseOperator::kGalerkin) {
      pendingA = std::make_unique<DistCsrMatrix>(
          lisi::sparse::galerkinProduct(*fine.r, *fine.a, *fine.p));
    }
    n = nc;
  }

  // Size every level's solve scratch now that the hierarchy is final.
  for (std::size_t l = 0; l < levels.size(); ++l) {
    Level& lvl = levels[l];
    const auto m = static_cast<std::size_t>(lvl.a->localRows());
    lvl.smoothR.assign(m, 0.0);
    if (l + 1 < levels.size()) {
      const auto mc =
          static_cast<std::size_t>(levels[l + 1].a->localRows());
      lvl.cycR.assign(m, 0.0);
      lvl.cycPe.assign(m, 0.0);
      lvl.cycRc.assign(mc, 0.0);
      lvl.cycEc.assign(mc, 0.0);
    }
  }

  // Coarsest-level exact solve: gather the operator to rank 0 and factor.
  factorCoarse();
}

void Solver::Impl::factorCoarse() {
  const Level& coarse = levels.back();
  const CsrMatrix gathered = coarse.a->gatherToRoot(0);
  if (comm.rank() == 0) {
    const int cn = coarse.n * coarse.n;
    std::vector<double> dense(static_cast<std::size_t>(cn) *
                                  static_cast<std::size_t>(cn),
                              0.0);
    for (int i = 0; i < cn; ++i) {
      for (int k = gathered.rowPtr[static_cast<std::size_t>(i)];
           k < gathered.rowPtr[static_cast<std::size_t>(i) + 1]; ++k) {
        dense[static_cast<std::size_t>(i) * static_cast<std::size_t>(cn) +
              static_cast<std::size_t>(
                  gathered.colIdx[static_cast<std::size_t>(k)])] +=
            gathered.values[static_cast<std::size_t>(k)];
      }
    }
    coarseLu.factor(std::move(dense), cn);
  }
}

// Value-only operator refresh over the fixed hierarchy: every DistCsrMatrix,
// transfer operator, halo plan, gsDiagPos table, and scratch vector built in
// build() stays alive; only values flow through.  Fine-to-coarse order so a
// Galerkin coarse operator sees the already-refreshed fine operator.
void Solver::Impl::refreshValues() {
  for (std::size_t l = 0; l < levels.size(); ++l) {
    Level& lvl = levels[l];
    const int n = lvl.n;
    if (l == 0 || options.coarseOperator == CoarseOperator::kRediscretize) {
      const double h = 1.0 / (n + 1);
      const BlockRowPartition part(n * n, comm.size());
      const int begin = part.startRow(comm.rank());
      const int end = begin + part.localRows(comm.rank());
      // assembleLevelRows emits canonical rows, so the structure matches
      // what the original constructor canonicalized; updateValues verifies.
      lvl.a->updateValues(assembleLevelRows(n, stencil(h), begin, end));
    } else {
      // Galerkin: recompute R*A*P values.  The triple product is structurally
      // deterministic in its inputs, so the sparsity matches the stored
      // operator and only values are copied over.  The temporary product does
      // build its own (throwaway) halo plan.
      const Level& fine = levels[l - 1];
      const DistCsrMatrix prod =
          lisi::sparse::galerkinProduct(*fine.r, *fine.a, *fine.p);
      lvl.a->updateValues(prod.localBlock());
    }
    // Smoother data: same recipes as build(), values only.
    lvl.invDiag = lvl.a->localDiagonal();
    for (double& d : lvl.invDiag) {
      LISI_CHECK(d != 0.0, "HyMG: zero diagonal on a level");
      d = 1.0 / d;
    }
    if (options.smoother == Smoother::kHybridGs) {
      const CsrMatrix& loc = lvl.a->localBlock();
      const int s = lvl.a->startRow();
      const int e = s + lvl.a->localRows();
      std::size_t pos = 0;
      for (int i = 0; i < loc.rows; ++i) {
        for (int k = loc.rowPtr[static_cast<std::size_t>(i)];
             k < loc.rowPtr[static_cast<std::size_t>(i) + 1]; ++k) {
          const int c = loc.colIdx[static_cast<std::size_t>(k)];
          if (c >= s && c < e) {
            lvl.gsBlock.values[pos++] = loc.values[static_cast<std::size_t>(k)];
          }
        }
      }
      LISI_CHECK(pos == lvl.gsBlock.values.size(),
                 "HyMG: local block sparsity changed during refresh");
    }
  }
  factorCoarse();
  if (lowPrecision) mirrorLowPrecision();
}

// Build (or refresh) every float32 mirror the low-precision cycle reads:
// smoother diagonals, hybrid-GS block values, the coarse dense factors, and
// the float scratch.  The DistCsrMatrix value mirrors refresh themselves
// lazily (spmvFloat tracks updateValues).
void Solver::Impl::mirrorLowPrecision() {
  for (std::size_t l = 0; l < levels.size(); ++l) {
    Level& lvl = levels[l];
    lvl.invDiagF.assign(lvl.invDiag.begin(), lvl.invDiag.end());
    lvl.gsValsF.assign(lvl.gsBlock.values.begin(), lvl.gsBlock.values.end());
    const auto m = static_cast<std::size_t>(lvl.a->localRows());
    lvl.smoothRF.assign(m, 0.0f);
    if (l + 1 < levels.size()) {
      const auto mc = static_cast<std::size_t>(levels[l + 1].a->localRows());
      lvl.cycRF.assign(m, 0.0f);
      lvl.cycPeF.assign(m, 0.0f);
      lvl.cycRcF.assign(mc, 0.0f);
      lvl.cycEcF.assign(mc, 0.0f);
    }
  }
  const auto m0 = static_cast<std::size_t>(levels.front().a->localRows());
  fineBF.assign(m0, 0.0f);
  fineXF.assign(m0, 0.0f);
  coarseLu.mirrorToFloat();  // no-op off rank 0 (factors live there only)
}

void Solver::Impl::smooth(const Level& lvl, std::span<const double> b,
                          std::span<double> x, int sweeps) const {
  const auto m = static_cast<std::size_t>(lvl.a->localRows());
  std::vector<double>& r = lvl.smoothR;
  for (int sweep = 0; sweep < sweeps; ++sweep) {
    lvl.a->spmv(x, std::span<double>(r));
    for (std::size_t i = 0; i < m; ++i) r[i] = b[i] - r[i];
    if (options.smoother == Smoother::kJacobi) {
      for (std::size_t i = 0; i < m; ++i) {
        x[i] += options.jacobiWeight * lvl.invDiag[i] * r[i];
      }
    } else {
      // Hybrid GS: x += (D + L_local)^{-1} r (forward substitution on the
      // local block's lower triangle).
      const CsrMatrix& blk = lvl.gsBlock;
      for (int i = 0; i < blk.rows; ++i) {
        double acc = r[static_cast<std::size_t>(i)];
        for (int k = blk.rowPtr[static_cast<std::size_t>(i)];
             k < lvl.gsDiagPos[static_cast<std::size_t>(i)]; ++k) {
          acc -= blk.values[static_cast<std::size_t>(k)] *
                 r[static_cast<std::size_t>(
                     blk.colIdx[static_cast<std::size_t>(k)])];
        }
        // Reuse r to hold the correction (already-final entries only are
        // read above because the block's lower columns are < i).
        r[static_cast<std::size_t>(i)] =
            acc / blk.values[static_cast<std::size_t>(
                      lvl.gsDiagPos[static_cast<std::size_t>(i)])];
      }
      for (std::size_t i = 0; i < m; ++i) x[i] += r[i];
    }
  }
}

void Solver::Impl::coarseSolve(std::span<const double> b,
                               std::span<double> x) const {
  const Level& coarse = levels.back();
  std::vector<double> bg = coarse.a->gatherVectorToRoot(b, 0);
  if (comm.rank() == 0) coarseLu.solve(bg);
  const std::vector<double> xl = coarse.a->scatterVectorFromRoot(
      comm.rank() == 0 ? std::span<const double>(bg)
                       : std::span<const double>(),
      0);
  std::copy(xl.begin(), xl.end(), x.begin());
}

void Solver::Impl::cycle(std::size_t l, std::span<const double> b,
                         std::span<double> x) const {
  const Level& lvl = levels[l];
  if (l + 1 == levels.size()) {
    coarseSolve(b, x);
    return;
  }
  smooth(lvl, b, x, options.preSmooth);
  // Coarse-grid correction (gamma-fold for W-cycles).
  const auto m = static_cast<std::size_t>(lvl.a->localRows());
  std::vector<double>& r = lvl.cycR;
  std::vector<double>& rc = lvl.cycRc;
  std::vector<double>& ec = lvl.cycEc;
  std::vector<double>& pe = lvl.cycPe;
  for (int g = 0; g < options.gamma; ++g) {
    lvl.a->spmv(x, std::span<double>(r));
    for (std::size_t i = 0; i < m; ++i) r[i] = b[i] - r[i];
    lvl.r->spmv(std::span<const double>(r), std::span<double>(rc));
    std::fill(ec.begin(), ec.end(), 0.0);
    cycle(l + 1, std::span<const double>(rc), std::span<double>(ec));
    lvl.p->spmv(std::span<const double>(ec), std::span<double>(pe));
    for (std::size_t i = 0; i < m; ++i) x[i] += pe[i];
    if (g + 1 < options.gamma) smooth(lvl, b, x, options.postSmooth);
  }
  smooth(lvl, b, x, options.postSmooth);
}

// ---- float32 cycle (setLowPrecision) -----------------------------------
// Structure-identical to smooth()/cycle()/coarseSolve() above, reading the
// float32 mirrors; see Solver::setLowPrecision for the precision contract.

void Solver::Impl::smoothF(const Level& lvl, std::span<const float> b,
                           std::span<float> x, int sweeps) const {
  const auto m = static_cast<std::size_t>(lvl.a->localRows());
  std::vector<float>& r = lvl.smoothRF;
  const auto w = static_cast<float>(options.jacobiWeight);
  for (int sweep = 0; sweep < sweeps; ++sweep) {
    lvl.a->spmvFloat(x, std::span<float>(r));
    for (std::size_t i = 0; i < m; ++i) r[i] = b[i] - r[i];
    if (options.smoother == Smoother::kJacobi) {
      for (std::size_t i = 0; i < m; ++i) {
        x[i] += w * lvl.invDiagF[i] * r[i];
      }
    } else {
      const CsrMatrix& blk = lvl.gsBlock;
      for (int i = 0; i < blk.rows; ++i) {
        float acc = r[static_cast<std::size_t>(i)];
        for (int k = blk.rowPtr[static_cast<std::size_t>(i)];
             k < lvl.gsDiagPos[static_cast<std::size_t>(i)]; ++k) {
          acc -= lvl.gsValsF[static_cast<std::size_t>(k)] *
                 r[static_cast<std::size_t>(
                     blk.colIdx[static_cast<std::size_t>(k)])];
        }
        r[static_cast<std::size_t>(i)] =
            acc / lvl.gsValsF[static_cast<std::size_t>(
                      lvl.gsDiagPos[static_cast<std::size_t>(i)])];
      }
      for (std::size_t i = 0; i < m; ++i) x[i] += r[i];
      lisi::prec::noteBytesLow(
          4LL * static_cast<long long>(lvl.gsValsF.size()));
    }
  }
}

void Solver::Impl::coarseSolveF(std::span<const float> b,
                                std::span<float> x) const {
  const Level& coarse = levels.back();
  // The coarsest grid is a handful of rows; gather/scatter stay float64
  // (negligible traffic), only the dense triangular solves run in float32.
  std::vector<double> bd(b.begin(), b.end());
  std::vector<double> bg =
      coarse.a->gatherVectorToRoot(std::span<const double>(bd), 0);
  if (comm.rank() == 0) {
    std::vector<float> bf(bg.begin(), bg.end());
    coarseLu.solveF(bf);
    std::copy(bf.begin(), bf.end(), bg.begin());
  }
  const std::vector<double> xl = coarse.a->scatterVectorFromRoot(
      comm.rank() == 0 ? std::span<const double>(bg)
                       : std::span<const double>(),
      0);
  for (std::size_t i = 0; i < xl.size(); ++i) {
    x[i] = static_cast<float>(xl[i]);
  }
}

void Solver::Impl::cycleF(std::size_t l, std::span<const float> b,
                          std::span<float> x) const {
  const Level& lvl = levels[l];
  if (l + 1 == levels.size()) {
    coarseSolveF(b, x);
    return;
  }
  smoothF(lvl, b, x, options.preSmooth);
  const auto m = static_cast<std::size_t>(lvl.a->localRows());
  std::vector<float>& r = lvl.cycRF;
  std::vector<float>& rc = lvl.cycRcF;
  std::vector<float>& ec = lvl.cycEcF;
  std::vector<float>& pe = lvl.cycPeF;
  for (int g = 0; g < options.gamma; ++g) {
    lvl.a->spmvFloat(x, std::span<float>(r));
    for (std::size_t i = 0; i < m; ++i) r[i] = b[i] - r[i];
    lvl.r->spmvFloat(std::span<const float>(r), std::span<float>(rc));
    std::fill(ec.begin(), ec.end(), 0.0f);
    cycleF(l + 1, std::span<const float>(rc), std::span<float>(ec));
    lvl.p->spmvFloat(std::span<const float>(ec), std::span<float>(pe));
    for (std::size_t i = 0; i < m; ++i) x[i] += pe[i];
    if (g + 1 < options.gamma) smoothF(lvl, b, x, options.postSmooth);
  }
  smoothF(lvl, b, x, options.postSmooth);
}

Solver::Solver(Comm comm, int gridN, StencilFn stencil, Options options)
    : impl_(new Impl) {
  LISI_CHECK(comm.valid(), "HyMG: invalid communicator");
  LISI_CHECK(options.preSmooth >= 0 && options.postSmooth >= 0,
             "HyMG: negative smoothing counts");
  LISI_CHECK(options.gamma >= 1, "HyMG: gamma must be >= 1");
  LISI_CHECK(options.jacobiWeight > 0 && options.jacobiWeight <= 1.0,
             "HyMG: jacobiWeight must be in (0, 1]");
  impl_->comm = std::move(comm);
  impl_->options = options;
  impl_->stencil = std::move(stencil);
  lisi::obs::Span span("hymg.setup");
  impl_->build(gridN);
}

Solver::~Solver() = default;
Solver::Solver(Solver&&) noexcept = default;
Solver& Solver::operator=(Solver&&) noexcept = default;

void Solver::refreshOperator(StencilFn stencil) {
  LISI_CHECK(static_cast<bool>(stencil),
             "HyMG::refreshOperator: stencil must be callable");
  impl_->stencil = std::move(stencil);
  lisi::obs::Span span("hymg.refresh");
  impl_->refreshValues();
}

int Solver::numLevels() const { return static_cast<int>(impl_->levels.size()); }

int Solver::gridN(int level) const {
  LISI_CHECK(level >= 0 && level < numLevels(), "HyMG: level out of range");
  return impl_->levels[static_cast<std::size_t>(level)].n;
}

const DistCsrMatrix& Solver::fineMatrix() const {
  return *impl_->levels.front().a;
}

lisi::sparse::SpmvConfig Solver::setFineSpmvConfig(
    const lisi::sparse::SpmvConfig& cfg) {
  return impl_->levels.front().a->setSpmvConfig(cfg);
}

int Solver::fineLocalRows() const {
  return impl_->levels.front().a->localRows();
}

void Solver::setLowPrecision(bool enable) {
  if (impl_->lowPrecision == enable) return;
  impl_->lowPrecision = enable;
  if (enable) {
    impl_->mirrorLowPrecision();
    return;
  }
  for (auto& lvl : impl_->levels) {
    lvl.invDiagF.clear();
    lvl.gsValsF.clear();
    lvl.smoothRF.clear();
    lvl.cycRF.clear();
    lvl.cycPeF.clear();
    lvl.cycRcF.clear();
    lvl.cycEcF.clear();
  }
  impl_->fineBF.clear();
  impl_->fineXF.clear();
  impl_->coarseLu.dropFloatMirror();
}

void Solver::applyCycle(std::span<const double> b, std::span<double> x) const {
  LISI_CHECK(static_cast<int>(b.size()) == fineLocalRows() &&
                 b.size() == x.size(),
             "HyMG::applyCycle: size mismatch");
  std::fill(x.begin(), x.end(), 0.0);
  lisi::obs::Span span("hymg.cycle");
  if (impl_->lowPrecision) {
    // Zero initial guess makes b itself the defect: one float32 cycle.
    std::vector<float>& bf = impl_->fineBF;
    std::vector<float>& xf = impl_->fineXF;
    for (std::size_t i = 0; i < b.size(); ++i) {
      bf[i] = static_cast<float>(b[i]);
    }
    std::fill(xf.begin(), xf.end(), 0.0f);
    impl_->cycleF(0, std::span<const float>(bf), std::span<float>(xf));
    for (std::size_t i = 0; i < x.size(); ++i) {
      x[i] = static_cast<double>(xf[i]);
    }
    lisi::prec::noteLowApply();
    return;
  }
  impl_->cycle(0, b, x);
}

SolveInfo Solver::solve(std::span<const double> b, std::span<double> x,
                        double rtol, int maxCycles) const {
  LISI_CHECK(static_cast<int>(b.size()) == fineLocalRows() &&
                 b.size() == x.size(),
             "HyMG::solve: size mismatch");
  const DistCsrMatrix& a = fineMatrix();
  const double bnorm = lisi::sparse::distNorm2(impl_->comm, b);
  SolveInfo info;
  if (bnorm == 0.0) {
    std::fill(x.begin(), x.end(), 0.0);
    info.converged = true;
    return info;
  }
  std::vector<double> r(b.size());
  if (impl_->lowPrecision) {
    // Defect correction: the float64 residual of the current iterate is the
    // right-hand side of one float32 cycle, whose correction is added back
    // in float64.  The residual computed for the convergence test doubles
    // as the next iteration's defect, so the per-cycle float64 work is one
    // fine-level SpMV — the same as the float64 path.
    std::vector<float>& bf = impl_->fineBF;
    std::vector<float>& xf = impl_->fineXF;
    a.spmv(x, std::span<double>(r));
    for (std::size_t i = 0; i < r.size(); ++i) r[i] = b[i] - r[i];
    for (int c = 0; c < maxCycles; ++c) {
      {
        lisi::obs::Span span("hymg.cycle");
        for (std::size_t i = 0; i < r.size(); ++i) {
          bf[i] = static_cast<float>(r[i]);
        }
        std::fill(xf.begin(), xf.end(), 0.0f);
        impl_->cycleF(0, std::span<const float>(bf), std::span<float>(xf));
        for (std::size_t i = 0; i < x.size(); ++i) {
          x[i] += static_cast<double>(xf[i]);
        }
        lisi::prec::noteLowApply();
        lisi::prec::noteRefineSweeps(1);
      }
      info.cycles = c + 1;
      a.spmv(x, std::span<double>(r));
      for (std::size_t i = 0; i < r.size(); ++i) r[i] = b[i] - r[i];
      info.relResidual = lisi::sparse::distNorm2(impl_->comm, r) / bnorm;
      if (info.relResidual <= rtol) {
        info.converged = true;
        return info;
      }
    }
    return info;
  }
  for (int c = 0; c < maxCycles; ++c) {
    {
      lisi::obs::Span span("hymg.cycle");
      impl_->cycle(0, b, x);
    }
    info.cycles = c + 1;
    a.spmv(x, std::span<double>(r));
    for (std::size_t i = 0; i < r.size(); ++i) r[i] = b[i] - r[i];
    info.relResidual = lisi::sparse::distNorm2(impl_->comm, r) / bnorm;
    if (info.relResidual <= rtol) {
      info.converged = true;
      return info;
    }
  }
  return info;
}

}  // namespace hymg
