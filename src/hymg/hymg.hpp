// HyMG — a distributed geometric multigrid package in the spirit of
// hypre's structured-grid solvers (SMG/PFMG).
//
// The paper (§2.2) names multilevel methods as "the only widely available
// and applicable solvers that have proved scalable in practice" and demands
// that a common solver interface support them, including re-entrant
// recursive level solves (§5.2 use case e).  HyMG provides that capability
// for 5-point operators on the unit square: a rediscretized grid hierarchy
// (each level assembles the same stencil at its own mesh width), bilinear
// prolongation, full-weighting restriction, weighted-Jacobi or hybrid
// (process-local) Gauss-Seidel smoothing, V- and W-cycles, and an exact
// dense solve on the coarsest grid.
//
// All levels are block-row distributed over the communicator; transfer
// operators are rectangular DistCsrMatrix instances, so every grid
// transfer is genuine message-passing communication.
//
// Grid-size requirement: vertex-centered coarsening needs an odd number of
// interior points per side at every level, so gridN should be 2^k - 1
// (coarsening stops early otherwise).
#pragma once

#include <functional>
#include <memory>
#include <span>

#include "comm/comm.hpp"
#include "sparse/dist_csr.hpp"

namespace hymg {

/// 5-point stencil at mesh width h: y_ij = c*x_ij + w*x_(i-1)j + e*x_(i+1)j
///                                       + s*x_i(j-1) + n*x_i(j+1).
struct Stencil5 {
  double c = 0, w = 0, e = 0, s = 0, n = 0;
};

/// Stencil generator: the same continuous operator discretized at width h.
using StencilFn = std::function<Stencil5(double h)>;

/// Stencil of -laplace(u) (SPD model problem).
Stencil5 laplaceStencil(double h);

/// Stencil of -laplace(u) + bx*u_x + by*u_y (centered differences).
/// The paper's operator u_xx + u_yy - 3 u_x, negated to an M-matrix,
/// corresponds to bx = 3, by = 0.
StencilFn convectionDiffusionStencil(double bx, double by);

/// Smoother selection.
enum class Smoother {
  kJacobi,    ///< weighted Jacobi (fully parallel)
  kHybridGs,  ///< Gauss-Seidel within each rank's block, Jacobi across
};

/// How coarse-level operators are formed.
enum class CoarseOperator {
  kRediscretize,  ///< assemble the stencil at each level's mesh width
  kGalerkin,      ///< A_{l+1} = R * A_l * P (distributed triple product);
                  ///< variationally consistent, denser (9-point) stencils
};

/// Cycle shape: gamma = 1 is a V-cycle, gamma = 2 a W-cycle.
struct Options {
  int preSmooth = 2;
  int postSmooth = 2;
  double jacobiWeight = 0.8;
  Smoother smoother = Smoother::kHybridGs;
  CoarseOperator coarseOperator = CoarseOperator::kRediscretize;
  int gamma = 1;
  int coarsestN = 3;   ///< stop coarsening at (or below) this grid side
  int maxLevels = 25;
};

/// Result of an iterative MG solve.
struct SolveInfo {
  int cycles = 0;
  double relResidual = 0.0;  ///< final ||b-Ax|| / ||b||
  bool converged = false;
};

/// A multigrid hierarchy over an N-by-N interior grid, usable as a
/// standalone solver (solve) or as a preconditioner (applyCycle).
class Solver {
 public:
  /// Build the hierarchy.  Collective over `comm`.
  Solver(lisi::comm::Comm comm, int gridN, StencilFn stencil,
         Options options = {});
  ~Solver();
  Solver(Solver&&) noexcept;
  Solver& operator=(Solver&&) noexcept;
  Solver(const Solver&) = delete;
  Solver& operator=(const Solver&) = delete;

  [[nodiscard]] int numLevels() const;
  [[nodiscard]] int gridN(int level) const;
  /// The level-0 (finest) operator.
  [[nodiscard]] const lisi::sparse::DistCsrMatrix& fineMatrix() const;
  /// Forward a tuned local-kernel configuration (src/tune) to the finest
  /// operator, where almost all hierarchy spmv time is spent.  Coarse
  /// levels keep the default kernel: they are too small to profit and the
  /// tuned decision was probed against the fine structure only.  Returns
  /// the configuration actually applied.  Purely local.
  lisi::sparse::SpmvConfig setFineSpmvConfig(
      const lisi::sparse::SpmvConfig& cfg);
  /// This rank's share of the finest grid.
  [[nodiscard]] int fineLocalRows() const;

  /// Run the multigrid cycle in float32 (defect correction).  The operator
  /// hierarchy, smoother diagonals, hybrid-GS blocks, transfer operators,
  /// and the coarsest-grid dense LU are all mirrored into float32, and
  /// applyCycle/solve apply them in float32 arithmetic; solve() wraps the
  /// float32 cycle in a float64 defect-correction loop (residuals and the
  /// convergence test stay float64 against the float64 fine operator), so
  /// it reaches the same tolerances as the all-float64 cycle at half the
  /// value bandwidth per cycle.  Collective agreement required: all ranks
  /// must select the same precision.  Mirrors follow refreshOperator
  /// automatically.
  void setLowPrecision(bool enable);

  /// Value-only refresh of the operator across the fixed hierarchy.
  /// The grid hierarchy, transfer operators, halo plans, and solve scratch
  /// are all kept; only operator values are recomputed: each level's
  /// stencil coefficients (or Galerkin coarse values), the smoother
  /// diagonals, the hybrid-GS local blocks, and the coarsest-grid dense
  /// factorization.  Use when the continuous operator's coefficients
  /// changed but the discretization (grid sizes, stencil footprint) did
  /// not.  Collective.
  void refreshOperator(StencilFn stencil);

  /// One multigrid cycle with zero initial guess: x = MG(b).  This is the
  /// preconditioner form (linear in b).  Collective.
  void applyCycle(std::span<const double> b, std::span<double> x) const;

  /// Iterate cycles until ||b - A x|| <= rtol * ||b|| or maxCycles.
  /// x carries the initial guess in and the solution out.  Collective.
  SolveInfo solve(std::span<const double> b, std::span<double> x, double rtol,
                  int maxCycles) const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace hymg
