// Adapter from a lisi_abi_v1 function table to the LISI SparseSolver port.
//
// The adapter subclasses detail::SolverComponentBase, so everything the
// built-in backends get — input-format adaptation, the operator-change
// contract, the precision/tune policy resolution, status reporting, obs
// spans — works unchanged for plugins.  Only backendSolve differs: instead
// of calling a C++ library it walks the plugin's C function table, and the
// distributed pieces (SpMV, reductions) flow BACK across the boundary
// through the host callback struct, so the plugin runs on the host's
// deterministic kernels and schedules.  That is what makes a plugin solve
// bitwise comparable to a built-in one (tests/plugin_test.cpp holds the
// refsolver to exactly that).
#include <cstdint>
#include <span>

#include "lisi/solver_base.hpp"
#include "plugin/plugin.hpp"
#include "support/error.hpp"

namespace lisi::plugin {
namespace {

// Unqualified `detail::` would find lisi::plugin::detail (the factory hook
// in plugin.hpp), not the solver-base machinery this adapter extends.
namespace base = ::lisi::detail;

/// Callback context: points at the SolveContext for the duration of one
/// backendSolve (the ABI restricts callback use to solve(); outside a solve
/// ctx is null and the callbacks fail with LISI_ABI_ERR_STATE).
struct HostBridge {
  const base::SolveContext* ctx = nullptr;
};

extern "C" int32_t lisiPluginHostApply(void* p, const double* x, double* y,
                                       int32_t localRows) {
  auto* bridge = static_cast<HostBridge*>(p);
  if (bridge == nullptr || bridge->ctx == nullptr ||
      bridge->ctx->matrix == nullptr) {
    return LISI_ABI_ERR_STATE;
  }
  if (x == nullptr || y == nullptr || localRows != bridge->ctx->localRows) {
    return LISI_ABI_ERR_ARG;
  }
  // No exception may cross the C boundary: translate to an error code.
  try {
    const auto n = static_cast<std::size_t>(localRows);
    bridge->ctx->matrix->spmv(std::span<const double>(x, n),
                              std::span<double>(y, n));
  } catch (...) {
    return LISI_ABI_ERR_INTERNAL;
  }
  return LISI_ABI_OK;
}

extern "C" int32_t lisiPluginHostAllreduce(void* p, const double* in,
                                           double* out, int32_t n) {
  auto* bridge = static_cast<HostBridge*>(p);
  if (bridge == nullptr || bridge->ctx == nullptr) return LISI_ABI_ERR_STATE;
  if (in == nullptr || out == nullptr || n < 0) return LISI_ABI_ERR_ARG;
  try {
    const auto count = static_cast<std::size_t>(n);
    bridge->ctx->comm->allreduce(std::span<const double>(in, count),
                                 std::span<double>(out, count),
                                 comm::ReduceOp::kSum);
  } catch (...) {
    return LISI_ABI_ERR_INTERNAL;
  }
  return LISI_ABI_OK;
}

/// ABI codes mirror lisi::ErrorCode values; anything out of range (a buggy
/// plugin inventing codes) degrades to the given fallback.
int mapAbiError(int32_t rc, ErrorCode fallback) {
  switch (rc) {
    case LISI_ABI_ERR_ARG:
      return static_cast<int>(ErrorCode::kInvalidArgument);
    case LISI_ABI_ERR_STATE:
      return static_cast<int>(ErrorCode::kBadState);
    case LISI_ABI_ERR_UNSUPPORTED:
      return static_cast<int>(ErrorCode::kUnsupported);
    case LISI_ABI_ERR_NUMERIC:
      return static_cast<int>(ErrorCode::kNumericFailure);
    case LISI_ABI_ERR_INTERNAL:
      return static_cast<int>(ErrorCode::kInternal);
    default:
      return static_cast<int>(fallback);
  }
}

class PluginSolverPort final : public base::SolverComponentBase {
 public:
  explicit PluginSolverPort(std::shared_ptr<const LoadedPlugin> plugin)
      : plugin_(std::move(plugin)) {}
  ~PluginSolverPort() override {
    if (inst_ != nullptr) plugin_->table->destroy(inst_);
  }

 protected:
  const char* backendName() const override {
    return plugin_->table->solver_name;
  }

  // String-keyed options are the plugin's to judge (the LIS idiom): accept
  // everything here and let set_option return LISI_ABI_ERR_UNSUPPORTED for
  // keys the plugin does not know — the host-side keys (tune, precision,
  // multi_rhs, ...) land there too and are skipped by design.
  bool acceptsParam(const std::string&) const override { return true; }

  int backendSolve(const base::SolveContext& ctx, std::span<const double> b,
                   std::span<double> x, base::BackendStats& stats) override {
    if (ctx.matrix == nullptr) {
      // ABI v1 has no matrix-free shape: apply_operator serves the plugin,
      // not the other way around (documented limitation, docs/PLUGIN_ABI.md).
      return static_cast<int>(ErrorCode::kUnsupported);
    }
    bridge_.ctx = &ctx;
    struct BridgeReset {
      HostBridge* bridge;
      ~BridgeReset() { bridge->ctx = nullptr; }
    } reset{&bridge_};

    const lisi_abi_v1* t = plugin_->table;
    if (inst_ == nullptr) {
      host_.ctx = &bridge_;
      host_.rank = ctx.comm->rank();
      host_.nranks = ctx.comm->size();
      host_.apply_operator = &lisiPluginHostApply;
      host_.allreduce_sum = &lisiPluginHostAllreduce;
      const int32_t rc = t->create(&host_, &inst_);
      if (rc != LISI_ABI_OK || inst_ == nullptr) {
        inst_ = nullptr;
        return mapAbiError(rc, ErrorCode::kInternal);
      }
    }

    // Forward the whole parameter table every solve (options are cheap and
    // the plugin sees updates made between solves).  The resolved precision
    // mode rides along as a read-only hint.
    for (const auto& [key, value] : paramTable()) {
      const int32_t rc = t->set_option(inst_, key.c_str(), value.c_str());
      if (rc != LISI_ABI_OK && rc != LISI_ABI_ERR_UNSUPPORTED) {
        return mapAbiError(rc, ErrorCode::kInvalidArgument);
      }
    }
    {
      const char* mode =
          ctx.precision == prec::Mode::kMixed ? "mixed" : "double";
      const int32_t rc = t->set_option(inst_, "lisi_precision", mode);
      if (rc != LISI_ABI_OK && rc != LISI_ABI_ERR_UNSUPPORTED) {
        return mapAbiError(rc, ErrorCode::kInvalidArgument);
      }
    }

    // Push the operator on structure or value change; kSameOperator replays
    // whatever the plugin kept (its factorization/preconditioner stays
    // valid, mirroring the built-in reuse contract).  ABI v1 has no
    // separate value-refresh entry: re-sending the same pattern IS the
    // kSameStructure path, and the plugin may diff it against what it kept.
    if (ctx.change != base::OperatorChange::kSameOperator ||
        !operatorPushed_) {
      static_assert(sizeof(int) == sizeof(int32_t),
                    "lisi_abi_v1 assumes 32-bit int indices");
      const sparse::CsrMatrix& a = ctx.matrix->localBlock();
      const int32_t rc = t->set_operator(
          inst_, static_cast<int32_t>(ctx.localRows),
          static_cast<int32_t>(ctx.globalRows),
          static_cast<int32_t>(ctx.startRow),
          reinterpret_cast<const int32_t*>(a.rowPtr.data()),
          reinterpret_cast<const int32_t*>(a.colIdx.data()),
          a.values.data());
      if (rc != LISI_ABI_OK) {
        return mapAbiError(rc, ErrorCode::kInvalidArgument);
      }
      operatorPushed_ = true;
    }

    lisi_abi_solve_info_v1 info{};
    const int32_t rc = t->solve(inst_, b.data(), x.data(),
                                static_cast<int32_t>(ctx.localRows), &info);
    if (rc != LISI_ABI_OK && rc != LISI_ABI_ERR_NUMERIC) {
      return mapAbiError(rc, ErrorCode::kInternal);
    }
    stats.iterations = info.iterations;
    stats.residualNorm = info.residual_norm;
    // Numeric failure and non-convergence both flow through stats.converged
    // so the base still fills the status array (the built-in contract).
    stats.converged = rc == LISI_ABI_OK && info.converged != 0;
    return static_cast<int>(ErrorCode::kOk);
  }

 private:
  std::shared_ptr<const LoadedPlugin> plugin_;
  void* inst_ = nullptr;
  lisi_abi_host_v1 host_{};  ///< stable address for the instance lifetime
  HostBridge bridge_;
  bool operatorPushed_ = false;
};

class PluginSolverComponent final : public cca::Component {
 public:
  explicit PluginSolverComponent(std::shared_ptr<const LoadedPlugin> plugin)
      : plugin_(std::move(plugin)) {}

  void setServices(cca::Services& services) override {
    auto port = std::make_shared<PluginSolverPort>(plugin_);
    port->attachServices(&services);
    services.addProvidesPort(port, kSparseSolverPortName,
                             kSparseSolverPortType);
    services.registerUsesPort(kMatrixFreePortName, kMatrixFreePortType);
  }

 private:
  std::shared_ptr<const LoadedPlugin> plugin_;
};

}  // namespace

namespace detail {
std::shared_ptr<cca::Component> makePluginComponent(
    std::shared_ptr<const LoadedPlugin> plugin) {
  return std::make_shared<PluginSolverComponent>(std::move(plugin));
}
}  // namespace detail

}  // namespace lisi::plugin
