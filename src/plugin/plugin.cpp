#include "plugin/plugin.hpp"

#include <dlfcn.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <set>
#include <sstream>

namespace lisi::plugin {

namespace fs = std::filesystem;

PluginRegistry& PluginRegistry::instance() {
  static PluginRegistry registry;
  return registry;
}

LoadReport PluginRegistry::loadFile(const std::string& path) {
  LoadReport report;
  report.path = path;

  // RTLD_LOCAL keeps plugin symbols out of the global namespace: two
  // plugins defining the same internal helper must not interfere.
  void* handle = ::dlopen(path.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (handle == nullptr) {
    const char* err = ::dlerror();
    report.error = std::string("dlopen failed: ") + (err ? err : "unknown");
    return report;
  }

  ::dlerror();  // clear any stale error before dlsym
  void* sym = ::dlsym(handle, LISI_PLUGIN_QUERY_SYMBOL);
  if (sym == nullptr) {
    report.error = std::string("missing entry point ") +
                   LISI_PLUGIN_QUERY_SYMBOL +
                   " (not a LISI plugin, or the symbol is not exported)";
    ::dlclose(handle);
    return report;
  }

  const auto query = reinterpret_cast<lisi_plugin_query_fn>(sym);
  const lisi_abi_v1* table = query(LISI_ABI_VERSION);
  if (table == nullptr) {
    std::ostringstream os;
    os << "plugin declined ABI version " << LISI_ABI_VERSION
       << " (it may target a different lisi_abi revision)";
    report.error = os.str();
    ::dlclose(handle);
    return report;
  }
  if (table->abi_version != LISI_ABI_VERSION) {
    std::ostringstream os;
    os << "plugin answered version " << LISI_ABI_VERSION
       << " with a table claiming abi_version=" << table->abi_version
       << "; refusing a mismatched struct layout";
    report.error = os.str();
    ::dlclose(handle);
    return report;
  }
  if (table->solver_name == nullptr || table->solver_name[0] == '\0') {
    report.error = "plugin table has no solver_name";
    ::dlclose(handle);
    return report;
  }
  if (table->create == nullptr || table->set_option == nullptr ||
      table->set_operator == nullptr || table->solve == nullptr ||
      table->get_info == nullptr || table->destroy == nullptr) {
    report.error = std::string("plugin '") + table->solver_name +
                   "' has a NULL entry in its function table";
    ::dlclose(handle);
    return report;
  }

  auto loaded = std::make_shared<LoadedPlugin>();
  loaded->path = path;
  loaded->table = table;
  loaded->dlHandle = handle;  // kept alive forever; see plugin.hpp

  report.className = std::string("plugin.") + table->solver_name;
  report.replaced = cca::Framework::isClassRegistered(report.className);
  {
    support::MutexLock lock(mutex_);
    plugins_.push_back(loaded);
  }
  // Re-registration REPLACES the factory: this is the hot-swap path.  Live
  // component instances keep their shared_ptr to the old LoadedPlugin.
  cca::Framework::registerClass(
      report.className, [plugin = std::shared_ptr<const LoadedPlugin>(loaded)] {
        return detail::makePluginComponent(plugin);
      });
  report.ok = true;
  return report;
}

std::vector<LoadReport> PluginRegistry::loadPath(
    const std::string& colonSeparated) {
  std::vector<LoadReport> reports;
  std::stringstream ss(colonSeparated);
  std::string entry;
  while (std::getline(ss, entry, ':')) {
    if (entry.empty()) continue;
    std::error_code ec;
    if (fs::is_directory(entry, ec)) {
      std::vector<fs::path> found;
      for (const auto& e : fs::directory_iterator(entry, ec)) {
        if (e.is_regular_file() && e.path().extension() == ".so") {
          found.push_back(e.path());
        }
      }
      std::sort(found.begin(), found.end());
      for (const auto& p : found) reports.push_back(loadFile(p.string()));
    } else {
      // A file (or a path that does not exist — loadFile reports that as a
      // dlopen diagnostic rather than silently skipping a typo).
      reports.push_back(loadFile(entry));
    }
  }
  return reports;
}

std::vector<LoadReport> PluginRegistry::loadFromEnv() {
  const char* env = std::getenv("LISI_PLUGIN_PATH");
  if (env == nullptr || env[0] == '\0') return {};
  return loadPath(env);
}

std::vector<std::string> PluginRegistry::loadedClasses() const {
  std::set<std::string> names;
  {
    support::MutexLock lock(mutex_);
    for (const auto& p : plugins_) {
      names.insert(std::string("plugin.") + p->table->solver_name);
    }
  }
  return {names.begin(), names.end()};
}

}  // namespace lisi::plugin
