// Host side of the C ABI plugin boundary (src/abi/lisi_abi.h).
//
// PluginRegistry dlopens solver shared objects, negotiates the ABI version
// through their lisi_plugin_query entry point, and registers every accepted
// table in the CCA class registry as "plugin.<solver_name>" — from there a
// plugin backend is indistinguishable from a built-in: the same
// Framework::instantiate, the same SparseSolver port, the same operator
// change / precision / tune machinery (the adapter in plugin_component.cpp
// subclasses detail::SolverComponentBase).
//
// Replacement semantics reproduce the paper's Figure 4 dynamic-swap story:
// loading a plugin whose solver_name is already registered REPLACES the
// factory (cca::Framework::registerClass replaces on re-registration), so
// components instantiated afterwards use the new code while live instances
// keep the old table.  To make that safe the registry never dlcloses a
// handle — superseded plugins stay mapped for the process lifetime, which
// is the standard hot-swap trade (text segments are cheap; a dangling
// function table is not).
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "abi/lisi_abi.h"
#include "cca/cca.hpp"
#include "support/thread_annotations.hpp"

namespace lisi::plugin {

/// One successfully negotiated shared object (kept alive forever).
struct LoadedPlugin {
  std::string path;                    ///< file the table came from
  const lisi_abi_v1* table = nullptr;  ///< validated v1 function table
  void* dlHandle = nullptr;            ///< never dlclosed (see header)
};

/// Outcome of one load attempt; loading never throws for a bad plugin —
/// a broken .so must not take the World down, it must be diagnosed.
struct LoadReport {
  std::string path;
  bool ok = false;
  std::string className;  ///< "plugin.<solver_name>" when ok
  bool replaced = false;  ///< an existing registration was superseded
  std::string error;      ///< diagnostic when !ok
};

class PluginRegistry {
 public:
  static PluginRegistry& instance();

  /// Load one shared object: dlopen, resolve lisi_plugin_query, negotiate
  /// LISI_ABI_VERSION, validate the table, register the CCA class.
  LoadReport loadFile(const std::string& path);

  /// Load a ':'-separated list of files and/or directories (directories are
  /// scanned non-recursively for "*.so", in sorted order).
  std::vector<LoadReport> loadPath(const std::string& colonSeparated);

  /// loadPath(getenv("LISI_PLUGIN_PATH")); empty result when unset.
  std::vector<LoadReport> loadFromEnv();

  /// CCA class names currently backed by a plugin (sorted, deduplicated —
  /// a replaced class appears once).
  [[nodiscard]] std::vector<std::string> loadedClasses() const;

 private:
  PluginRegistry() = default;

  mutable support::AnnotatedMutex mutex_;
  /// Every plugin ever accepted, superseded ones included (keep-alive).
  std::vector<std::shared_ptr<LoadedPlugin>> plugins_ LISI_GUARDED_BY(mutex_);
};

namespace detail {
/// Factory used by the registry: a CCA component whose SparseSolver port is
/// adapted from `plugin`'s function table (plugin_component.cpp).
std::shared_ptr<cca::Component> makePluginComponent(
    std::shared_ptr<const LoadedPlugin> plugin);
}  // namespace detail

}  // namespace lisi::plugin
