// lisi::obs — low-overhead observability: per-rank scoped timers (spans)
// and counters, merged post-run into a cross-rank report.
//
// The paper's credibility argument (Figure 5, Table 1) is that the LISI
// layer adds only a small, attributable overhead per solve.  Backing that
// claim — and steering the next performance PR — needs to know *where*
// time goes across the comm, preconditioner, and Krylov layers.  This
// module provides that attribution without perturbing what it measures:
//
//   * Hot path: `Span` (RAII scoped timer) and `count()` write only to
//     thread-local streams — no locks, no allocation after warm-up, no
//     shared cache lines between rank threads.  Raw timeline events go to
//     a fixed-capacity ring (oldest dropped, drops counted); per-name
//     aggregates (count/total/min/max) are exact regardless of drops.
//   * Compile-out: configured with -DLISI_OBS=OFF (the default) the span
//     and counter calls are empty inline functions and the instrumented
//     binaries contain no recording code at all — benchmarks measure
//     identically.  obs::enabled() reports at run time which way the
//     linked library was built.  The LISI_OBS_ENABLED definition is
//     PUBLIC on the lisi_obs target: span call sites inline into every
//     dependent TU, so all of them must agree with the library.
//   * Post-run: `collect()` merges every thread's stream into a Report —
//     per-phase min/max/mean across ranks, a load-imbalance ratio
//     (max-over-ranks / mean-over-ranks of per-rank total time), counter
//     sums — rendered to JSON by `toJson()`; `writeChromeTrace()` exports
//     the raw timeline in Chrome trace-event format (load in
//     chrome://tracing or https://ui.perfetto.dev, one row per rank).
//
// Rank attribution: comm::World::run tags each rank thread via
// setThreadRank(); streams recorded outside any world (the main thread)
// report rank -1.  Session attribution: a layer that carves one World into
// session sub-communicators (src/service) additionally tags each rank
// thread via setThreadSession(); every span/counter is then attributed to
// the (session, rank) pair current *at record time*, so per-session
// reports separate concurrent sessions sharing one World.  Unlabeled
// threads record session -1 and aggregate exactly as before.
// collect()/reset() walk other threads' streams without synchronizing
// against live writers, so call them only while no world is running —
// i.e. between World::run invocations, which is the natural post-run
// aggregation point.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace lisi::obs {

/// True if the linked lisi_obs library was built with LISI_OBS=ON.
[[nodiscard]] bool enabled();

// ---- post-run aggregation (available in both build modes) -------------

/// Cross-rank statistics for one span name.
struct SpanStat {
  std::string name;
  std::uint64_t count = 0;       ///< completed spans, all ranks
  double totalSeconds = 0.0;     ///< summed over all spans and ranks
  double minSeconds = 0.0;       ///< fastest single span
  double maxSeconds = 0.0;       ///< slowest single span
  std::uint64_t detailTotal = 0; ///< summed span detail (bytes for comm spans)
  int ranks = 0;                 ///< distinct ranks that recorded the span
  double rankTotalMin = 0.0;     ///< min over ranks of per-rank total
  double rankTotalMax = 0.0;     ///< max over ranks of per-rank total
  double rankTotalMean = 0.0;    ///< mean over ranks of per-rank total
  double imbalance = 1.0;        ///< rankTotalMax / rankTotalMean
};

/// Cross-rank statistics for one counter name.
struct CounterStat {
  std::string name;
  long long total = 0;       ///< summed over all ranks
  int ranks = 0;             ///< distinct ranks that bumped the counter
  long long rankMin = 0;     ///< min over ranks of per-rank total
  long long rankMax = 0;     ///< max over ranks of per-rank total
  double rankMean = 0.0;     ///< mean over ranks of per-rank total
};

/// Per-session slice of one span name.  Only threads labeled through
/// setThreadSession() (session >= 0) appear here; the global `spans` stats
/// always cover every thread regardless of session.
struct SessionSpanStat {
  int session = -1;
  std::string name;
  std::uint64_t count = 0;
  double totalSeconds = 0.0;
  int ranks = 0;  ///< distinct ranks of this session that recorded the span
};

/// Per-session slice of one counter name (same visibility rule).
struct SessionCounterStat {
  int session = -1;
  std::string name;
  long long total = 0;
  int ranks = 0;
};

/// Everything recorded since the last reset(), merged across threads.
struct Report {
  bool enabled = false;              ///< obs::enabled() at collection time
  std::uint64_t droppedEvents = 0;   ///< timeline ring overflows (aggregates
                                     ///< stay exact; only the trace is lossy)
  std::vector<SpanStat> spans;       ///< sorted by name
  std::vector<CounterStat> counters; ///< sorted by name
  std::vector<SessionSpanStat> sessionSpans;       ///< sorted (session, name)
  std::vector<SessionCounterStat> sessionCounters; ///< sorted (session, name)
};

/// One raw timeline event (for trace export and tests).
struct TraceEvent {
  std::string name;
  int rank = -1;
  int session = -1;      ///< setThreadSession label at record time (-1 = none)
  double startUs = 0.0;  ///< microseconds since process start
  double durUs = 0.0;
  int depth = 0;         ///< span nesting depth at record time (0 = outermost)
};

/// Merge every registered stream into a Report.  Quiescent-only: see the
/// header comment.  On LISI_OBS=OFF builds returns an empty report with
/// enabled == false.
[[nodiscard]] Report collect();

/// Raw timeline events (start-ordered).  Quiescent-only.
[[nodiscard]] std::vector<TraceEvent> traceEvents();

/// Discard all recorded data (aggregates, rings, drop counts).
/// Quiescent-only.
void reset();

/// Render a Report as JSON (schema "lisi-obs-v2"; key order is stable and
/// asserted by tests/obs_test.cpp).  v2 appends the per-session
/// "session_spans" / "session_counters" arrays — empty unless a layer
/// labeled rank threads through setThreadSession().
[[nodiscard]] std::string toJson(const Report& report);

/// Write the raw timeline as a Chrome trace-event file ("traceEvents"
/// array of "ph":"X" slices, tid = rank).  Returns false if the file
/// could not be written.
bool writeChromeTrace(const std::string& path);

// ---- hot-path recording API -------------------------------------------

#ifdef LISI_OBS_ENABLED

namespace detail {
/// Enter a span on this thread: bumps the nesting depth, returns start ns.
[[nodiscard]] std::uint64_t spanBegin();
/// Leave a span: records the aggregate and a ring event, drops the depth.
void spanEnd(const char* name, std::uint64_t startNs, std::uint64_t detail);
}  // namespace detail

/// Tag the calling thread as `rank` (comm::World::run does this for every
/// rank thread it spawns).
void setThreadRank(int rank);

/// Tag the calling thread as belonging to session `session` (-1 = none).
/// Everything the thread records afterwards is attributed to this session
/// until the next call; service layers call it right after splitting their
/// session sub-communicator.  Threads never touched by it stay session -1.
void setThreadSession(int session);

/// Add `delta` to the named counter on this thread's stream.  `name` must
/// be a string literal (it is stored by pointer on the hot path and only
/// merged by content at collect time).
void count(const char* name, long long delta = 1);

/// RAII scoped timer.  `name` must be a string literal; `detail` is an
/// arbitrary payload summed per name in the report (comm spans pass bytes
/// on the wire).
class Span {
 public:
  explicit Span(const char* name, std::uint64_t detail = 0)
      : name_(name), detail_(detail), startNs_(detail::spanBegin()) {}
  ~Span() { detail::spanEnd(name_, startNs_, detail_); }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_;
  std::uint64_t detail_;
  std::uint64_t startNs_;
};

#else  // LISI_OBS=OFF: everything below compiles to nothing.

inline void setThreadRank(int) {}
inline void setThreadSession(int) {}
inline void count(const char*, long long = 1) {}

class Span {
 public:
  explicit Span(const char*, std::uint64_t = 0) {}
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
};

#endif  // LISI_OBS_ENABLED

}  // namespace lisi::obs
