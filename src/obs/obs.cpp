#include "obs/obs.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <limits>
#include <map>
#include <memory>
#include <mutex>

#include "support/thread_annotations.hpp"

namespace lisi::obs {
namespace {

/// Raw timeline events kept per thread; the oldest are overwritten when a
/// thread records more (drops are counted, aggregates stay exact).
constexpr std::size_t kRingCapacity = std::size_t{1} << 14;

std::uint64_t nowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Time zero for trace timestamps, anchored at first use.
std::uint64_t processStartNs() {
  static const std::uint64_t t0 = nowNs();
  return t0;
}

/// Exact per-(name, session) aggregate on one thread.  The session is
/// captured at record time so a thread relabeled mid-stream (service rank
/// threads record world-setup work before their session exists) attributes
/// each event to the session current when it happened.
struct SpanAgg {
  const char* name = nullptr;
  int session = -1;
  std::uint64_t count = 0;
  std::uint64_t totalNs = 0;
  std::uint64_t minNs = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t maxNs = 0;
  std::uint64_t detailTotal = 0;
};

struct CounterAgg {
  const char* name = nullptr;
  int session = -1;
  long long total = 0;
};

struct RawEvent {
  const char* name = nullptr;
  std::uint64_t startNs = 0;
  std::uint64_t durNs = 0;
  int depth = 0;
  int session = -1;
};

/// One thread's private stream.  The owning thread writes without locks;
/// collect()/reset() read/clear from another thread only while no rank
/// threads are live (documented contract).
struct ThreadStream {
  ThreadStream() {
    // Reserve up front so steady-state recording never reallocates: the
    // instrumented hot paths (spmv, collectives) are covered by
    // allocation-free tests that must hold with LISI_OBS=ON too.
    spans.reserve(64);
    counters.reserve(64);
    ring.reserve(kRingCapacity);
  }

  int rank = -1;
  int session = -1;
  int depth = 0;
  std::vector<SpanAgg> spans;
  std::vector<CounterAgg> counters;
  std::vector<RawEvent> ring;
  std::size_t ringNext = 0;  ///< wraps at kRingCapacity once the ring is full
  std::uint64_t dropped = 0;

  SpanAgg& spanAggFor(const char* name) {
    // Pointer identity is the fast path (string literals); content equality
    // is the fallback so the same name from two TUs still merges here
    // rather than only at collect time.  Aggregates split per session: a
    // thread with a stable session (the common case) still hits one entry.
    for (SpanAgg& agg : spans) {
      if (agg.session == session &&
          (agg.name == name || std::strcmp(agg.name, name) == 0)) {
        return agg;
      }
    }
    spans.push_back(SpanAgg{name, session, 0, 0,
                            std::numeric_limits<std::uint64_t>::max(), 0, 0});
    return spans.back();
  }

  CounterAgg& counterAggFor(const char* name) {
    for (CounterAgg& agg : counters) {
      if (agg.session == session &&
          (agg.name == name || std::strcmp(agg.name, name) == 0)) {
        return agg;
      }
    }
    counters.push_back(CounterAgg{name, session, 0});
    return counters.back();
  }

  void clear() {
    spans.clear();
    counters.clear();
    ring.clear();
    ringNext = 0;
    dropped = 0;
  }
};

/// Global registry of every thread's stream.  Streams are shared_ptr so a
/// thread's data survives its exit (World::run joins its rank threads long
/// before the post-run aggregation happens).  Leaked deliberately: rank
/// threads may still be unwinding their thread_local destructors while the
/// process exits.
struct Registry {
  support::AnnotatedMutex mutex;
  /// Stream registration order is rank-arrival order; collect()/reset()
  /// additionally require quiescence (no rank inside a span) — a property
  /// the mutex cannot express and obs_test enforces behaviourally.
  std::vector<std::shared_ptr<ThreadStream>> streams LISI_GUARDED_BY(mutex);
};

Registry& registry() {
  static Registry* r = new Registry;
  return *r;
}

#ifdef LISI_OBS_ENABLED
ThreadStream& stream() {
  thread_local std::shared_ptr<ThreadStream> s = [] {
    auto p = std::make_shared<ThreadStream>();
    Registry& reg = registry();
    support::MutexLock lock(reg.mutex);
    reg.streams.push_back(p);
    return p;
  }();
  return *s;
}
#endif

// ---- JSON helpers ------------------------------------------------------

void appendEscaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c; break;
    }
  }
}

void appendDouble(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  out += buf;
}

}  // namespace

bool enabled() {
#ifdef LISI_OBS_ENABLED
  return true;
#else
  return false;
#endif
}

#ifdef LISI_OBS_ENABLED

namespace detail {

// lisi-lint: zero-alloc-begin(span/counter recording steady state)
// The ThreadStream constructor reserves every container (spans, counters,
// ring) precisely so this region never touches the heap once warm; the
// obs_test allocation-free assertions are the behavioural twin of these
// markers.

std::uint64_t spanBegin() {
  ++stream().depth;
  return nowNs();
}

void spanEnd(const char* name, std::uint64_t startNs, std::uint64_t detail) {
  const std::uint64_t endNs = nowNs();
  const std::uint64_t durNs = endNs - startNs;
  ThreadStream& s = stream();
  const int depth = --s.depth;
  SpanAgg& agg = s.spanAggFor(name);
  ++agg.count;
  agg.totalNs += durNs;
  agg.minNs = std::min(agg.minNs, durNs);
  agg.maxNs = std::max(agg.maxNs, durNs);
  agg.detailTotal += detail;
  const RawEvent event{name, startNs, durNs, depth, s.session};
  if (s.ring.size() < kRingCapacity) {
    // lisi-lint: allow(hot-alloc) ring.reserve(kRingCapacity) ran in the ThreadStream constructor; this push_back never reallocates
    s.ring.push_back(event);
  } else {
    s.ring[s.ringNext] = event;
    s.ringNext = (s.ringNext + 1) % kRingCapacity;
    ++s.dropped;
  }
}

}  // namespace detail

void setThreadRank(int rank) { stream().rank = rank; }

void setThreadSession(int session) { stream().session = session; }

void count(const char* name, long long delta) {
  stream().counterAggFor(name).total += delta;
}

// lisi-lint: zero-alloc-end

#endif  // LISI_OBS_ENABLED

Report collect() {
  Report report;
  report.enabled = enabled();
  // Merge per-thread exact aggregates: first per (name, rank), then across
  // ranks.  Multiple streams can share a rank (every World::run spawns
  // fresh threads), so per-rank totals accumulate across worlds.
  struct SpanMerge {
    std::uint64_t count = 0;
    std::uint64_t totalNs = 0;
    std::uint64_t minNs = std::numeric_limits<std::uint64_t>::max();
    std::uint64_t maxNs = 0;
    std::uint64_t detailTotal = 0;
    std::map<int, std::uint64_t> rankTotalNs;
  };
  std::map<std::string, SpanMerge> spanByName;
  std::map<std::string, std::map<int, long long>> counterByName;
  // Session slices: (session, name) -> per-rank data, sessions >= 0 only.
  // The global maps above deliberately merge across sessions so the
  // whole-run stats are unchanged by session labeling.
  struct SessionSpanMerge {
    std::uint64_t count = 0;
    std::uint64_t totalNs = 0;
    std::map<int, char> ranks;
  };
  struct SessionCounterMerge {
    long long total = 0;
    std::map<int, char> ranks;
  };
  std::map<std::pair<int, std::string>, SessionSpanMerge> spanBySession;
  std::map<std::pair<int, std::string>, SessionCounterMerge> counterBySession;
  {
    Registry& reg = registry();
    support::MutexLock lock(reg.mutex);
    for (const auto& s : reg.streams) {
      report.droppedEvents += s->dropped;
      for (const SpanAgg& agg : s->spans) {
        SpanMerge& m = spanByName[agg.name];
        m.count += agg.count;
        m.totalNs += agg.totalNs;
        m.minNs = std::min(m.minNs, agg.minNs);
        m.maxNs = std::max(m.maxNs, agg.maxNs);
        m.detailTotal += agg.detailTotal;
        m.rankTotalNs[s->rank] += agg.totalNs;
        if (agg.session >= 0) {
          SessionSpanMerge& sm =
              spanBySession[std::make_pair(agg.session, std::string(agg.name))];
          sm.count += agg.count;
          sm.totalNs += agg.totalNs;
          sm.ranks[s->rank] = 1;
        }
      }
      for (const CounterAgg& agg : s->counters) {
        counterByName[agg.name][s->rank] += agg.total;
        if (agg.session >= 0) {
          SessionCounterMerge& cm = counterBySession[std::make_pair(
              agg.session, std::string(agg.name))];
          cm.total += agg.total;
          cm.ranks[s->rank] = 1;
        }
      }
    }
  }
  const auto toSeconds = [](std::uint64_t ns) {
    return static_cast<double>(ns) * 1e-9;
  };
  for (const auto& [name, m] : spanByName) {
    SpanStat stat;
    stat.name = name;
    stat.count = m.count;
    stat.totalSeconds = toSeconds(m.totalNs);
    stat.minSeconds = toSeconds(m.minNs);
    stat.maxSeconds = toSeconds(m.maxNs);
    stat.detailTotal = m.detailTotal;
    stat.ranks = static_cast<int>(m.rankTotalNs.size());
    std::uint64_t rankMin = std::numeric_limits<std::uint64_t>::max();
    std::uint64_t rankMax = 0;
    std::uint64_t rankSum = 0;
    for (const auto& [rank, totalNs] : m.rankTotalNs) {
      rankMin = std::min(rankMin, totalNs);
      rankMax = std::max(rankMax, totalNs);
      rankSum += totalNs;
    }
    stat.rankTotalMin = toSeconds(rankMin);
    stat.rankTotalMax = toSeconds(rankMax);
    stat.rankTotalMean =
        toSeconds(rankSum) / static_cast<double>(stat.ranks);
    stat.imbalance = stat.rankTotalMean > 0.0
                         ? stat.rankTotalMax / stat.rankTotalMean
                         : 1.0;
    report.spans.push_back(std::move(stat));
  }
  for (const auto& [name, byRank] : counterByName) {
    CounterStat stat;
    stat.name = name;
    stat.ranks = static_cast<int>(byRank.size());
    long long rankMin = std::numeric_limits<long long>::max();
    long long rankMax = std::numeric_limits<long long>::min();
    for (const auto& [rank, total] : byRank) {
      stat.total += total;
      rankMin = std::min(rankMin, total);
      rankMax = std::max(rankMax, total);
    }
    stat.rankMin = rankMin;
    stat.rankMax = rankMax;
    stat.rankMean =
        static_cast<double>(stat.total) / static_cast<double>(stat.ranks);
    report.counters.push_back(std::move(stat));
  }
  for (const auto& [key, m] : spanBySession) {
    SessionSpanStat stat;
    stat.session = key.first;
    stat.name = key.second;
    stat.count = m.count;
    stat.totalSeconds = toSeconds(m.totalNs);
    stat.ranks = static_cast<int>(m.ranks.size());
    report.sessionSpans.push_back(std::move(stat));
  }
  for (const auto& [key, m] : counterBySession) {
    SessionCounterStat stat;
    stat.session = key.first;
    stat.name = key.second;
    stat.total = m.total;
    stat.ranks = static_cast<int>(m.ranks.size());
    report.sessionCounters.push_back(std::move(stat));
  }
  return report;
}

std::vector<TraceEvent> traceEvents() {
  std::vector<TraceEvent> events;
  const std::uint64_t t0 = processStartNs();
  Registry& reg = registry();
  support::MutexLock lock(reg.mutex);
  for (const auto& s : reg.streams) {
    for (const RawEvent& e : s->ring) {
      TraceEvent out;
      out.name = e.name;
      out.rank = s->rank;
      out.session = e.session;
      out.startUs = static_cast<double>(e.startNs - t0) * 1e-3;
      out.durUs = static_cast<double>(e.durNs) * 1e-3;
      out.depth = e.depth;
      events.push_back(std::move(out));
    }
  }
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.startUs < b.startUs;
            });
  return events;
}

void reset() {
  Registry& reg = registry();
  support::MutexLock lock(reg.mutex);
  for (const auto& s : reg.streams) s->clear();
}

std::string toJson(const Report& report) {
  std::string out;
  out += "{\n  \"schema\": \"lisi-obs-v2\",\n  \"enabled\": ";
  out += report.enabled ? "true" : "false";
  out += ",\n  \"dropped_events\": " + std::to_string(report.droppedEvents);
  out += ",\n  \"spans\": [";
  bool first = true;
  for (const SpanStat& s : report.spans) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"name\": \"";
    appendEscaped(out, s.name);
    out += "\", \"count\": " + std::to_string(s.count);
    out += ", \"total_s\": ";
    appendDouble(out, s.totalSeconds);
    out += ", \"min_s\": ";
    appendDouble(out, s.minSeconds);
    out += ", \"max_s\": ";
    appendDouble(out, s.maxSeconds);
    out += ", \"mean_s\": ";
    appendDouble(out, s.count > 0
                          ? s.totalSeconds / static_cast<double>(s.count)
                          : 0.0);
    out += ", \"detail_total\": " + std::to_string(s.detailTotal);
    out += ", \"ranks\": " + std::to_string(s.ranks);
    out += ", \"rank_total_min_s\": ";
    appendDouble(out, s.rankTotalMin);
    out += ", \"rank_total_max_s\": ";
    appendDouble(out, s.rankTotalMax);
    out += ", \"rank_total_mean_s\": ";
    appendDouble(out, s.rankTotalMean);
    out += ", \"imbalance\": ";
    appendDouble(out, s.imbalance);
    out += "}";
  }
  out += first ? "],\n" : "\n  ],\n";
  out += "  \"counters\": [";
  first = true;
  for (const CounterStat& c : report.counters) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"name\": \"";
    appendEscaped(out, c.name);
    out += "\", \"total\": " + std::to_string(c.total);
    out += ", \"ranks\": " + std::to_string(c.ranks);
    out += ", \"rank_min\": " + std::to_string(c.rankMin);
    out += ", \"rank_max\": " + std::to_string(c.rankMax);
    out += ", \"rank_mean\": ";
    appendDouble(out, c.rankMean);
    out += "}";
  }
  out += first ? "],\n" : "\n  ],\n";
  out += "  \"session_spans\": [";
  first = true;
  for (const SessionSpanStat& s : report.sessionSpans) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"session\": " + std::to_string(s.session) + ", \"name\": \"";
    appendEscaped(out, s.name);
    out += "\", \"count\": " + std::to_string(s.count);
    out += ", \"total_s\": ";
    appendDouble(out, s.totalSeconds);
    out += ", \"ranks\": " + std::to_string(s.ranks);
    out += "}";
  }
  out += first ? "],\n" : "\n  ],\n";
  out += "  \"session_counters\": [";
  first = true;
  for (const SessionCounterStat& c : report.sessionCounters) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"session\": " + std::to_string(c.session) + ", \"name\": \"";
    appendEscaped(out, c.name);
    out += "\", \"total\": " + std::to_string(c.total);
    out += ", \"ranks\": " + std::to_string(c.ranks);
    out += "}";
  }
  out += first ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

bool writeChromeTrace(const std::string& path) {
  const std::vector<TraceEvent> events = traceEvents();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fputs("{\"traceEvents\": [", f);
  bool first = true;
  for (const TraceEvent& e : events) {
    std::string line = first ? "\n" : ",\n";
    first = false;
    line += "  {\"name\": \"";
    appendEscaped(line, e.name);
    line += "\", \"ph\": \"X\", \"pid\": 0, \"tid\": " +
            std::to_string(e.rank) + ", \"ts\": ";
    appendDouble(line, e.startUs);
    line += ", \"dur\": ";
    appendDouble(line, e.durUs);
    line += ", \"args\": {\"depth\": " + std::to_string(e.depth);
    if (e.session >= 0) {
      line += ", \"session\": " + std::to_string(e.session);
    }
    line += "}}";
    std::fputs(line.c_str(), f);
  }
  std::fputs(first ? "]}\n" : "\n]}\n", f);
  const bool ok = std::fclose(f) == 0;
  return ok;
}

}  // namespace lisi::obs
