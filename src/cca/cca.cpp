#include "cca/cca.hpp"

#include <algorithm>
#include <mutex>

#include "support/thread_annotations.hpp"

namespace cca {

// ---- Services ----------------------------------------------------------

void Services::addProvidesPort(std::shared_ptr<Port> port,
                               const std::string& portName,
                               const std::string& type) {
  LISI_CHECK(port != nullptr, "addProvidesPort: null port");
  LISI_CHECK(!portName.empty() && !type.empty(),
             "addProvidesPort: empty name or type");
  LISI_CHECK(provided_.find(portName) == provided_.end(),
             "addProvidesPort: duplicate provides port '" + portName + "'");
  provided_.emplace(portName, Provided{type, std::move(port)});
}

void Services::registerUsesPort(const std::string& portName,
                                const std::string& type) {
  LISI_CHECK(!portName.empty() && !type.empty(),
             "registerUsesPort: empty name or type");
  LISI_CHECK(uses_.find(portName) == uses_.end(),
             "registerUsesPort: duplicate uses port '" + portName + "'");
  uses_.emplace(portName, Uses{type, nullptr});
}

std::shared_ptr<Port> Services::getPort(const std::string& portName) const {
  auto it = uses_.find(portName);
  LISI_CHECK(it != uses_.end(),
             "getPort: no uses port named '" + portName + "'");
  LISI_CHECK(it->second.connected != nullptr,
             "getPort: uses port '" + portName + "' is not connected");
  return it->second.connected;
}

bool Services::isConnected(const std::string& portName) const {
  auto it = uses_.find(portName);
  LISI_CHECK(it != uses_.end(),
             "isConnected: no uses port named '" + portName + "'");
  return it->second.connected != nullptr;
}

std::vector<Services::PortInfo> Services::providedPorts() const {
  std::vector<PortInfo> out;
  out.reserve(provided_.size());
  for (const auto& [name, p] : provided_) out.push_back({name, p.type});
  return out;
}

std::vector<Services::PortInfo> Services::usedPorts() const {
  std::vector<PortInfo> out;
  out.reserve(uses_.size());
  for (const auto& [name, u] : uses_) out.push_back({name, u.type});
  return out;
}

// ---- class registry ------------------------------------------------------

namespace {

struct ClassRegistry {
  lisi::support::AnnotatedMutex mutex;
  std::map<std::string, Framework::Factory> factories LISI_GUARDED_BY(mutex);
};

ClassRegistry& classRegistry() {
  static ClassRegistry instance;
  return instance;
}

}  // namespace

void Framework::registerClass(const std::string& className, Factory factory) {
  LISI_CHECK(!className.empty() && factory != nullptr,
             "registerClass: empty name or null factory");
  ClassRegistry& reg = classRegistry();
  lisi::support::MutexLock lock(reg.mutex);
  reg.factories[className] = std::move(factory);
}

bool Framework::isClassRegistered(const std::string& className) {
  ClassRegistry& reg = classRegistry();
  lisi::support::MutexLock lock(reg.mutex);
  return reg.factories.find(className) != reg.factories.end();
}

std::vector<std::string> Framework::registeredClasses() {
  ClassRegistry& reg = classRegistry();
  lisi::support::MutexLock lock(reg.mutex);
  std::vector<std::string> names;
  names.reserve(reg.factories.size());
  for (const auto& [name, factory] : reg.factories) names.push_back(name);
  return names;
}

// ---- Framework -----------------------------------------------------------

Framework::Instance& Framework::find(const std::string& instanceName) {
  auto it = instances_.find(instanceName);
  LISI_CHECK(it != instances_.end(),
             "no component instance named '" + instanceName + "'");
  return it->second;
}

const Framework::Instance& Framework::find(
    const std::string& instanceName) const {
  auto it = instances_.find(instanceName);
  LISI_CHECK(it != instances_.end(),
             "no component instance named '" + instanceName + "'");
  return it->second;
}

void Framework::instantiate(const std::string& instanceName,
                            const std::string& className) {
  LISI_CHECK(!instanceName.empty(), "instantiate: empty instance name");
  LISI_CHECK(instances_.find(instanceName) == instances_.end(),
             "instantiate: instance '" + instanceName + "' already exists");
  Factory factory;
  {
    ClassRegistry& reg = classRegistry();
    lisi::support::MutexLock lock(reg.mutex);
    auto it = reg.factories.find(className);
    LISI_CHECK(it != reg.factories.end(),
               "instantiate: unknown component class '" + className + "'");
    factory = it->second;
  }
  Instance inst;
  inst.className = className;
  inst.component = factory();
  LISI_CHECK(inst.component != nullptr,
             "instantiate: factory for '" + className + "' returned null");
  auto [it, inserted] = instances_.emplace(instanceName, std::move(inst));
  LISI_ASSERT(inserted);
  it->second.component->setServices(it->second.services);
}

void Framework::destroy(const std::string& instanceName) {
  Instance& inst = find(instanceName);
  (void)inst;
  // Disconnect every connection that touches this instance.
  for (auto it = connections_.begin(); it != connections_.end();) {
    if (it->user == instanceName || it->provider == instanceName) {
      auto userIt = instances_.find(it->user);
      if (userIt != instances_.end()) {
        userIt->second.services.uses_[it->usesPort].connected = nullptr;
      }
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
  instances_.erase(instanceName);
}

void Framework::connect(const std::string& userInstance,
                        const std::string& usesPort,
                        const std::string& providerInstance,
                        const std::string& providesPort) {
  Instance& user = find(userInstance);
  Instance& provider = find(providerInstance);
  auto usesIt = user.services.uses_.find(usesPort);
  LISI_CHECK(usesIt != user.services.uses_.end(),
             "connect: '" + userInstance + "' has no uses port '" + usesPort +
                 "'");
  auto provIt = provider.services.provided_.find(providesPort);
  LISI_CHECK(provIt != provider.services.provided_.end(),
             "connect: '" + providerInstance + "' has no provides port '" +
                 providesPort + "'");
  LISI_CHECK(usesIt->second.type == provIt->second.type,
             "connect: port type mismatch ('" + usesIt->second.type +
                 "' uses vs '" + provIt->second.type + "' provides)");
  LISI_CHECK(usesIt->second.connected == nullptr,
             "connect: uses port '" + userInstance + "." + usesPort +
                 "' is already connected (disconnect first)");
  usesIt->second.connected = provIt->second.port;
  connections_.push_back(
      {userInstance, usesPort, providerInstance, providesPort});
}

void Framework::disconnect(const std::string& userInstance,
                           const std::string& usesPort) {
  Instance& user = find(userInstance);
  auto usesIt = user.services.uses_.find(usesPort);
  LISI_CHECK(usesIt != user.services.uses_.end(),
             "disconnect: '" + userInstance + "' has no uses port '" +
                 usesPort + "'");
  usesIt->second.connected = nullptr;
  connections_.erase(
      std::remove_if(connections_.begin(), connections_.end(),
                     [&](const Connection& c) {
                       return c.user == userInstance && c.usesPort == usesPort;
                     }),
      connections_.end());
}

std::shared_ptr<Port> Framework::getProvidesPort(
    const std::string& instanceName, const std::string& portName) const {
  const Instance& inst = find(instanceName);
  auto it = inst.services.provided_.find(portName);
  LISI_CHECK(it != inst.services.provided_.end(),
             "getProvidesPort: '" + instanceName + "' has no provides port '" +
                 portName + "'");
  return it->second.port;
}

const Services& Framework::servicesOf(const std::string& instanceName) const {
  return find(instanceName).services;
}

std::vector<std::string> Framework::instances() const {
  std::vector<std::string> names;
  names.reserve(instances_.size());
  for (const auto& [name, inst] : instances_) names.push_back(name);
  return names;
}

std::vector<std::string> Framework::connections() const {
  std::vector<std::string> out;
  out.reserve(connections_.size());
  for (const auto& c : connections_) {
    out.push_back(c.user + "." + c.usesPort + " -> " + c.provider + "." +
                  c.providesPort);
  }
  return out;
}

}  // namespace cca
