// A Common Component Architecture (CCA) framework in the style of
// Ccaffeine (the framework the paper's experiments ran on, §8).
//
// The CCA model (§4 of the paper): a *component* is a collection of
// *ports*; ports a component implements are its *provides* ports, ports it
// calls are its *uses* ports.  A *framework* instantiates components,
// connects uses ports to provides ports (type-checked), and can
// disconnect/reconnect them at run time — the "dynamic switching of
// components with the same interface and different implementation" that
// motivates LISI.
//
// In SPMD usage, every rank instantiates its own framework and the same
// wiring; a component's per-rank instances are its *cohorts* (§8), and the
// parallelism lives inside the components (they receive a communicator
// through their ports, not from the framework).
//
// SIDL/Babel language bindings are out of scope (single-language C++):
// a port is an abstract class deriving from cca::Port, and the port *type*
// string plays the role of the SIDL interface name for connection-time
// type checking.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "support/error.hpp"

namespace cca {

/// Base class of every port interface (gov.cca.Port analogue).
class Port {
 public:
  virtual ~Port() = default;
};

class Services;

/// Base class of every component (gov.cca.Component analogue).
/// setServices is called exactly once, right after instantiation; the
/// component registers its provides/uses ports there.
class Component {
 public:
  virtual ~Component() = default;
  virtual void setServices(Services& services) = 0;
};

/// Per-instance registry handle a component uses to declare and resolve
/// ports (gov.cca.Services analogue).
class Services {
 public:
  /// Declare a provides port: `port` implements interface `type` under the
  /// instance-local name `portName`.
  void addProvidesPort(std::shared_ptr<Port> port, const std::string& portName,
                       const std::string& type);

  /// Declare a uses port slot of interface `type` named `portName`.
  void registerUsesPort(const std::string& portName, const std::string& type);

  /// Resolve a uses port to whatever provides port it is currently
  /// connected to.  Throws lisi::Error when unconnected — resolution is
  /// late-bound, so reconnection between calls switches implementations.
  [[nodiscard]] std::shared_ptr<Port> getPort(const std::string& portName) const;

  /// Typed convenience wrapper around getPort.
  template <class PortT>
  [[nodiscard]] std::shared_ptr<PortT> getPortAs(const std::string& portName) const {
    auto port = std::dynamic_pointer_cast<PortT>(getPort(portName));
    LISI_CHECK(port != nullptr,
               "getPort('" + portName + "'): connected port has wrong C++ type");
    return port;
  }

  /// True if the uses port is currently connected.
  [[nodiscard]] bool isConnected(const std::string& portName) const;

  // ---- introspection -----------------------------------------------

  struct PortInfo {
    std::string name;
    std::string type;
  };
  [[nodiscard]] std::vector<PortInfo> providedPorts() const;
  [[nodiscard]] std::vector<PortInfo> usedPorts() const;

 private:
  friend class Framework;
  struct Provided {
    std::string type;
    std::shared_ptr<Port> port;
  };
  struct Uses {
    std::string type;
    std::shared_ptr<Port> connected;  ///< null when disconnected
  };
  std::map<std::string, Provided> provided_;
  std::map<std::string, Uses> uses_;
};

/// The framework: class registry + instance lifecycle + wiring
/// (Ccaffeine / BuilderService analogue).  One Framework per rank in SPMD
/// runs; not thread-safe across ranks (each rank owns its instance).
class Framework {
 public:
  using Factory = std::function<std::shared_ptr<Component>()>;

  /// Register a component class in the process-global class registry
  /// (idempotent for identical names; re-registering replaces the factory).
  static void registerClass(const std::string& className, Factory factory);

  /// True if `className` is registered.
  static bool isClassRegistered(const std::string& className);

  /// Names of all registered classes (sorted).
  static std::vector<std::string> registeredClasses();

  /// Create an instance of `className` under `instanceName` and invoke its
  /// setServices.  Throws on duplicate instance names or unknown classes.
  void instantiate(const std::string& instanceName,
                   const std::string& className);

  /// Destroy an instance (its provides ports connected elsewhere are
  /// disconnected first).
  void destroy(const std::string& instanceName);

  /// Connect `userInstance`'s uses port to `providerInstance`'s provides
  /// port.  Port types must match exactly; an already-connected uses port
  /// must be disconnected first.
  void connect(const std::string& userInstance, const std::string& usesPort,
               const std::string& providerInstance,
               const std::string& providesPort);

  /// Disconnect a uses port (no-op if already disconnected).
  void disconnect(const std::string& userInstance, const std::string& usesPort);

  /// Access an instance's provides port from driver code (the way a
  /// Ccaffeine "go" button invokes a component's entry port).
  [[nodiscard]] std::shared_ptr<Port> getProvidesPort(
      const std::string& instanceName, const std::string& portName) const;

  template <class PortT>
  [[nodiscard]] std::shared_ptr<PortT> getProvidesPortAs(
      const std::string& instanceName, const std::string& portName) const {
    auto port = std::dynamic_pointer_cast<PortT>(
        getProvidesPort(instanceName, portName));
    LISI_CHECK(port != nullptr, "provides port '" + portName + "' of '" +
                                    instanceName + "' has wrong C++ type");
    return port;
  }

  /// The Services handle of an instance (introspection, tests).
  [[nodiscard]] const Services& servicesOf(const std::string& instanceName) const;

  /// Instance names currently alive (sorted).
  [[nodiscard]] std::vector<std::string> instances() const;

  /// Live connections as strings "user.usesPort -> provider.providesPort".
  [[nodiscard]] std::vector<std::string> connections() const;

 private:
  struct Instance {
    std::string className;
    std::shared_ptr<Component> component;
    Services services;
  };
  struct Connection {
    std::string user;
    std::string usesPort;
    std::string provider;
    std::string providesPort;
  };

  Instance& find(const std::string& instanceName);
  [[nodiscard]] const Instance& find(const std::string& instanceName) const;

  std::map<std::string, Instance> instances_;
  std::vector<Connection> connections_;
};

/// Helper for static registration:
///   namespace { const cca::ClassRegistrar reg("my.Component", [] { ... }); }
class ClassRegistrar {
 public:
  ClassRegistrar(const std::string& className, Framework::Factory factory) {
    Framework::registerClass(className, std::move(factory));
  }
};

}  // namespace cca
