#!/usr/bin/env bash
# Repo verify flow:
#   1. tier-1: configure, build, run the full ctest suite;
#   2. TSan:   rebuild with -DLISI_SANITIZE=thread and run the comm, dist,
#              and pksp binaries — MiniMPI is thread-backed, so this proves
#              the overlapped halo exchange, the blocking and nonblocking
#              (split-phase) collective schedules, and the pipelined Krylov
#              loops race-free.
#   3. ASan+UBSan: rebuild with -DLISI_SANITIZE=address+undefined and run
#              the sparse, slu, and operator-reuse binaries — the value-only
#              update paths write positionally into frozen factor / halo-plan
#              storage, which is exactly the bug class these sanitizers
#              catch.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j
(cd build && ctest --output-on-failure -j)

cmake -B build-tsan -S . -DLISI_SANITIZE=thread
cmake --build build-tsan -j --target comm_test sparse_dist_test pksp_test
./build-tsan/tests/comm_test
./build-tsan/tests/sparse_dist_test
./build-tsan/tests/pksp_test --gtest_filter='*Pipelined*:*Pipeline*'

cmake -B build-asan -S . -DLISI_SANITIZE=address+undefined
cmake --build build-asan -j --target sparse_dist_test slu_test lisi_reuse_test
./build-asan/tests/sparse_dist_test
./build-asan/tests/slu_test
./build-asan/tests/lisi_reuse_test

echo "verify: OK"
