#!/usr/bin/env bash
# Repo verify flow:
#   1. tier-1: configure, build, run the full ctest suite;
#   1b. tuner:  run the full suite again with LISI_TUNE=on (probing forced
#              for every structure) and once with LISI_TUNE=off (tuner
#              compiled in but bypassed) — tuning decisions may change
#              kernels and schedules, never results;
#   2. checker: rebuild with -DLISI_COMM_CHECK=ON and run the full suite
#              again — the MiniMPI verifier (lockstep collective signatures,
#              wait-for-graph deadlock detection, tag/handle lint) must stay
#              silent on correct code, and the comm_check_test seeded
#              violations must each die with their diagnostic;
#   3. TSan:   rebuild with -DLISI_SANITIZE=thread and run the comm, dist,
#              and pksp binaries — MiniMPI is thread-backed, so this proves
#              the overlapped halo exchange, the blocking and nonblocking
#              (split-phase) collective schedules, and the pipelined Krylov
#              loops race-free;
#   4. ASan+UBSan: rebuild with -DLISI_SANITIZE=address+undefined and run
#              the sparse, slu, and operator-reuse binaries — the value-only
#              update paths write positionally into frozen factor / halo-plan
#              storage, which is exactly the bug class these sanitizers
#              catch — plus the plugin suite, so dlopen-loaded backends and
#              the host callback bridge run under the allocator checks;
#   4b. plugin: compile the reference plugin OUT-OF-TREE — a scratch dir
#              holding nothing but a copy of src/abi/lisi_abi.h, a plain C99
#              compiler, -Werror — proving the ABI header is genuinely
#              self-contained, then run the hot-swap demo
#              (examples/plugin_swap: solve, replace the .so at run time,
#              re-solve bitwise-identically) at 1 and 4 ranks against that
#              out-of-tree build;
#   5. obs:    rebuild with -DLISI_OBS=ON and run the full suite — the
#              observability spans/counters on the comm and solver hot
#              paths must not change any result, and the allocation-free
#              guarantees must survive the instrumentation;
#   5b. service: the session-pool service (src/service) under both hostile
#              configurations — the TSan build runs the full service suite
#              (concurrent client submitters racing two solving sessions
#              over the shared queue, tune cache, and schedule fallback)
#              and the obs build runs it again so the per-session
#              span/counter attribution path is exercised for real
#              (Service.PerSessionObsAttribution skips everywhere else);
#   1c. precision: run the full suite with LISI_PRECISION=mixed (float32
#              speed paths forced wherever a backend has one) and with
#              LISI_PRECISION=double (pure-float64 paths pinned) — the
#              precision policy may change speed, never correctness;
#   1d. lisi-lint: run the project-specific static-analysis pass
#              (tools/lisi_lint, built as part of the tier-1 tree) over
#              src/ tests/ bench/ examples/ — raw tags, collectives inside
#              rank branches, dropped obs spans, allocations in zero-alloc
#              regions, undocumented env knobs; any unsuppressed finding
#              fails the flow (scripts/lint.sh is the fast dev loop for
#              the same pass);
#   6. docs:   every -DLISI_* CMake option named in README/DESIGN/docs must
#              actually exist in CMakeLists.txt (no doc drift), the
#              rule catalog in docs/STATIC_ANALYSIS.md must match the rules
#              registered in tools/lisi_lint/rules.def both ways, and the
#              plugin ABI spec (docs/PLUGIN_ABI.md) must cover every
#              identifier src/abi/lisi_abi.h exports — and name none it
#              doesn't — in both directions;
#   7. lint:   when clang-tidy is on PATH the -DLISI_LINT=ON rebuild is
#              MANDATORY (the tidy gate plus, under Clang, the
#              -Werror=thread-safety annotation check); skipped loudly
#              (not silently) on toolchains without clang-tidy.
#
# Sanitizer availability is probed loudly up front: a toolchain without
# libtsan/libasan would otherwise fail mid-flow with an obscure linker error,
# or worse, tempt a silent skip that reports a verification that never ran.
set -euo pipefail
cd "$(dirname "$0")/.."

# ---- sanitizer availability probes ------------------------------------
# Compile-and-link a one-liner against each sanitizer runtime.  Each probe
# prints its verdict; a missing runtime fails the flow here, by name, not
# three stages later inside a CMake error log.
probe_sanitizer() {
  local flag="$1"
  local name="$2"
  local tmp
  tmp="$(mktemp -d)"
  trap 'rm -rf "${tmp}"' RETURN
  echo 'int main(){return 0;}' > "${tmp}/probe.cpp"
  if c++ "-fsanitize=${flag}" -o "${tmp}/probe" "${tmp}/probe.cpp" 2> "${tmp}/err"; then
    echo "verify: sanitizer probe: ${name} available"
  else
    echo "verify: FATAL: ${name} (-fsanitize=${flag}) is not usable with this toolchain:" >&2
    sed 's/^/verify:   /' "${tmp}/err" >&2
    echo "verify: install the ${name} runtime or run the stages manually." >&2
    return 1
  fi
}
probe_sanitizer thread            "ThreadSanitizer"
probe_sanitizer address,undefined "AddressSanitizer+UBSan"

# ---- 1. tier-1 ---------------------------------------------------------
cmake -B build -S .
cmake --build build -j
(cd build && ctest --output-on-failure -j)

# ---- 1b. autotuner forced on / forced off ------------------------------
# Every test must hold under both extremes of the tuning policy: probes on
# every assembled structure (on), and the exact pre-tuner code path (off).
(cd build && LISI_TUNE=on ctest --output-on-failure -j)
(cd build && LISI_TUNE=off ctest --output-on-failure -j)

# ---- 1c. mixed precision forced on / forced off ------------------------
# Same contract as 1b for the precision policy: the whole suite must hold
# with float32 speed paths forced on everywhere a backend has one (mixed)
# and with the policy pinned to the pure-float64 paths (double).  The env
# knob loses to explicit "precision" parameters; tests whose semantics
# need a clean environment clear the variable for their own scope.
(cd build && LISI_PRECISION=mixed ctest --output-on-failure -j)
(cd build && LISI_PRECISION=double ctest --output-on-failure -j)

# ---- 1d. lisi_lint -----------------------------------------------------
# The project-specific pass: zero unsuppressed findings across the whole
# scanned surface, using the binary the tier-1 build just produced.  Any
# suppression in the tree is an inline `// lisi-lint: allow(<rule>) <reason>`
# — blanket or reasonless suppressions are themselves findings.
./build/tools/lisi_lint/lisi_lint --root . src tests bench examples

# ---- 2. LISI_COMM_CHECK ------------------------------------------------
# The checked library must pass the *entire* suite (no false positives on
# correct code) and the seeded-violation tests flip from SKIPPED to active.
cmake -B build-check -S . -DLISI_COMM_CHECK=ON
cmake --build build-check -j
(cd build-check && ctest --output-on-failure -j)

# ---- 3. TSan -----------------------------------------------------------
# lisi_lint is in the target list deliberately: the tool must keep building
# under every toolchain/flag combination verify exercises, GCC and Clang
# alike, so a Clang-only construct can never sneak into it.
cmake -B build-tsan -S . -DLISI_SANITIZE=thread
cmake --build build-tsan -j --target comm_test sparse_dist_test pksp_test \
  service_test lisi_lint
./build-tsan/tests/comm_test
./build-tsan/tests/sparse_dist_test
./build-tsan/tests/pksp_test --gtest_filter='*Pipelined*:*Pipeline*'

# ---- 5b. service under TSan --------------------------------------------
# The service layer is the one place where *client* threads race the rank
# threads (bounded queue, promise resolution, batch slot handoff) and
# where two sessions hit the process-wide tune cache and the global
# schedule fallback concurrently.  The whole service suite must be
# TSan-clean, ConcurrentSubmittersStress included.
./build-tsan/tests/service_test

# ---- 4. ASan+UBSan -----------------------------------------------------
# plugin_test is here deliberately: it dlopens the refsolver and the four
# broken-on-purpose fixture plugins (all built with the same sanitizer
# flags by this tree), so the host↔plugin callback bridge, the option
# forwarding, and the keep-alive registry all run under ASan+UBSan.
cmake -B build-asan -S . -DLISI_SANITIZE=address+undefined
cmake --build build-asan -j --target sparse_dist_test slu_test \
  lisi_reuse_test plugin_test
./build-asan/tests/sparse_dist_test
./build-asan/tests/slu_test
./build-asan/tests/lisi_reuse_test
./build-asan/tests/plugin_test

# ---- 4b. plugin boundary -----------------------------------------------
# The ABI header must be self-contained: copy it ALONE into a scratch dir
# and build the reference plugin there with a plain C99 compiler and
# -Werror — no repo include paths, no C++ toolchain.  Then run the
# hot-swap demo (solve -> replace the .so at run time -> re-solve, bitwise
# equality demanded) at 1 and 4 ranks against that out-of-tree build.
plugin_tmp="$(mktemp -d)"
cp src/abi/lisi_abi.h "${plugin_tmp}/"
cc -std=c99 -Wall -Wextra -Werror -shared -fPIC -I"${plugin_tmp}" \
  plugins/refsolver/refsolver.c -o "${plugin_tmp}/librefsolver.so"
echo "verify: plugin: refsolver built out-of-tree against lisi_abi.h alone"
LISI_PLUGIN_PATH="${plugin_tmp}" ./build/examples/plugin_swap 48 1
LISI_PLUGIN_PATH="${plugin_tmp}" ./build/examples/plugin_swap 48 4
rm -rf "${plugin_tmp}"

# ---- 5. LISI_OBS=ON ----------------------------------------------------
# The instrumented build must pass the entire suite: spans/counters on the
# hot paths may not perturb results, break the allocation-free guarantees
# (the streams preallocate), or deadlock the checker-free collectives.
# This is also where the service suite's per-session attribution test
# (Service.PerSessionObsAttribution) goes live — it skips in OBS=OFF
# builds, so the full-suite run here is its only gate.
cmake -B build-obs -S . -DLISI_OBS=ON
cmake --build build-obs -j
(cd build-obs && ctest --output-on-failure -j)

# ---- 6. doc sanity -----------------------------------------------------
# Any -DLISI_FOO a reader can copy out of the docs must be a real CMake
# option: stale flags in README/DESIGN/docs are worse than none.
doc_sanity() {
  local fail=0
  local flags
  flags=$(grep -rhoE '\-DLISI_[A-Z_]+' README.md DESIGN.md EXPERIMENTS.md docs/*.md 2>/dev/null \
    | sed 's/^-D//' | sort -u)
  for flag in $flags; do
    if grep -qE "(option|set)\(${flag}([^A-Z_]|\$)" CMakeLists.txt; then
      echo "verify: doc sanity: ${flag} exists in CMakeLists.txt"
    else
      echo "verify: FATAL: docs name -D${flag} but CMakeLists.txt defines no such option" >&2
      fail=1
    fi
  done
  # Environment knobs (LISI_FOO=..., not -D flags) named in the docs must
  # be read somewhere via getenv: a documented knob nothing reads is the
  # same drift in another spelling.
  local knobs
  knobs=$(grep -rhoE '\bLISI_[A-Z_]+=' README.md DESIGN.md EXPERIMENTS.md docs/*.md 2>/dev/null \
    | sed 's/=$//' | sort -u)
  for knob in $knobs; do
    if grep -qE "(option|set)\(${knob}([^A-Z_]|\$)" CMakeLists.txt; then
      continue  # a CMake cache variable spelled without -D; checked above
    fi
    if grep -rqE "(getenv|envInt)\(\"${knob}\"[,)]" src bench tests tools; then
      echo "verify: doc sanity: env knob ${knob} is read in the sources"
    else
      echo "verify: FATAL: docs name env knob ${knob} but no source reads it" >&2
      fail=1
    fi
  done
  # The lisi_lint rule catalog must not drift: every rule registered in
  # tools/lisi_lint/rules.def appears (as `rule-id`) in the catalog of
  # docs/STATIC_ANALYSIS.md, and every backticked rule id the doc catalog
  # table names is actually registered.  rules.def keeps one rule per line
  # precisely so this grep stays honest.
  local def_ids doc_ids
  def_ids=$(grep -hoE '^LISI_LINT_RULE\([A-Za-z]+, "[a-z-]+"' tools/lisi_lint/rules.def \
    | sed 's/.*"\([a-z-]*\)"/\1/' | sort -u)
  doc_ids=$(grep -hoE '^\| `[a-z-]+`' docs/STATIC_ANALYSIS.md 2>/dev/null \
    | sed 's/^| `\([a-z-]*\)`/\1/' | sort -u)
  for id in $def_ids; do
    if printf '%s\n' "${doc_ids}" | grep -qx "${id}"; then
      echo "verify: doc sanity: lint rule ${id} is documented in docs/STATIC_ANALYSIS.md"
    else
      echo "verify: FATAL: rules.def registers lint rule '${id}' but the" \
           "docs/STATIC_ANALYSIS.md catalog table does not list it" >&2
      fail=1
    fi
  done
  for id in $doc_ids; do
    if printf '%s\n' "${def_ids}" | grep -qx "${id}"; then
      :
    else
      echo "verify: FATAL: docs/STATIC_ANALYSIS.md catalogs lint rule" \
           "'${id}' but tools/lisi_lint/rules.def does not register it" >&2
      fail=1
    fi
  done
  # The plugin ABI spec must cover the header, symbol for symbol.  Forward:
  # every macro/type/entry-point identifier and every struct member in
  # src/abi/lisi_abi.h appears in docs/PLUGIN_ABI.md.  Reverse: every ABI
  # identifier the doc names exists in the header (LISI_PLUGIN_PATH is the
  # one deliberate exception — it is the loader's env knob, read via
  # getenv in src/plugin, not an ABI symbol).
  local abi_header=src/abi/lisi_abi.h abi_doc=docs/PLUGIN_ABI.md
  local sym_re='LISI_ABI_[A-Z0-9_]+|LISI_PLUGIN_[A-Z0-9_]+|lisi_abi_[a-z0-9_]+|lisi_plugin_query(_fn)?'
  local hdr_syms hdr_members hdr_fields doc_syms
  hdr_syms=$(grep -hoE "${sym_re}" "${abi_header}" | sort -u)
  hdr_members=$(grep -hoE '\(\*[a-z_]+\)' "${abi_header}" | tr -d '(*)' | sort -u)
  hdr_fields=$(grep -hoE '^\s*(uint32_t|int32_t|double|void\*|const char\*) [a-z_]+;' \
    "${abi_header}" | grep -oE '[a-z_]+;' | tr -d ';' | sort -u)
  for sym in $(printf '%s\n%s\n%s\n' "${hdr_syms}" "${hdr_members}" "${hdr_fields}" | sort -u); do
    if grep -qw "${sym}" "${abi_doc}"; then
      echo "verify: doc sanity: ABI symbol ${sym} is specified in ${abi_doc}"
    else
      echo "verify: FATAL: ${abi_header} exports '${sym}' but ${abi_doc}" \
           "never mentions it" >&2
      fail=1
    fi
  done
  doc_syms=$(grep -hoE "${sym_re}" "${abi_doc}" | sort -u)
  for sym in ${doc_syms}; do
    if grep -qw "${sym}" "${abi_header}"; then
      :
    elif grep -rqE "getenv\(\"${sym}\"\)" src/plugin; then
      :
    else
      echo "verify: FATAL: ${abi_doc} names ABI symbol '${sym}' but" \
           "${abi_header} does not define it" >&2
      fail=1
    fi
  done
  return "${fail}"
}
doc_sanity

# ---- 7. lint (clang-tidy, when available) ------------------------------
# The LISI_LINT gate (CMake + .clang-tidy) is wired but dormant on
# toolchains without clang-tidy.  Probe for the binary the same way the
# sanitizer probes work: run the gate when it can run, and say so by name
# when it cannot — a skip must never look like a pass.
if command -v clang-tidy >/dev/null 2>&1; then
  echo "verify: lint probe: clang-tidy available ($(command -v clang-tidy))"
  cmake -B build-lint -S . -DLISI_LINT=ON
  cmake --build build-lint -j
  echo "verify: lint: clang-tidy gate passed"
else
  echo "verify: lint: SKIPPED — clang-tidy not on PATH; the LISI_LINT" \
       "gate did not run (install clang-tidy to enable it)"
fi

echo "verify: OK"
