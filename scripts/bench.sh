#!/usr/bin/env bash
# Run every ablation benchmark and collect the artifacts in one place
# (bench-artifacts/): JSON where the harness produces it, the raw table
# otherwise.  LISI_BENCH_REPS=n shortens the self-timed runs.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j --target ablation_pipeline ablation_reuse \
  ablation_autotune ablation_precision ablation_overhead ablation_service \
  ablation_collectives ablation_rarray ablation_params ablation_formats \
  ablation_matfree ablation_mg

# Fail loudly, by name, if any expected harness binary is missing — a
# renamed target would otherwise surface as a confusing "no such file"
# halfway through the collection loop below.
for bin in ablation_pipeline ablation_reuse ablation_autotune \
    ablation_precision ablation_overhead ablation_service \
    ablation_collectives ablation_rarray ablation_params ablation_formats \
    ablation_matfree ablation_mg; do
  if [ ! -x "./build/bench/$bin" ]; then
    echo "bench: FATAL: expected binary build/bench/$bin is missing" >&2
    exit 1
  fi
done

ART="$PWD/bench-artifacts"
mkdir -p "$ART"

# Pipelined-Krylov ablation writes BENCH_pipeline.json into its cwd.
(cd "$ART" && "$OLDPWD"/build/bench/ablation_pipeline \
  | tee BENCH_pipeline.txt)

# Operator-reuse ablation writes BENCH_reuse.json into its cwd.
(cd "$ART" && "$OLDPWD"/build/bench/ablation_reuse \
  | tee BENCH_reuse.txt)

# Autotune ablation writes BENCH_autotune.json into its cwd.  LISI_TUNE
# must not leak into the run: both arms set the "tune" parameter
# explicitly.
(cd "$ART" && env -u LISI_TUNE "$OLDPWD"/build/bench/ablation_autotune \
  | tee BENCH_autotune.txt)

# Mixed-precision ablation writes BENCH_precision.json into its cwd.
# LISI_PRECISION must not leak into the run: both arms set the "precision"
# parameter explicitly, and tuning is pinned off inside the harness.
(cd "$ART" && env -u LISI_PRECISION "$OLDPWD"/build/bench/ablation_precision \
  | tee BENCH_precision.txt)

# Componentization-overhead ablation writes BENCH_overhead.json into its
# cwd (plus BENCH_overhead_obs.json / BENCH_overhead_trace.json when the
# build has LISI_OBS=ON — see docs/OBSERVABILITY.md).
(cd "$ART" && "$OLDPWD"/build/bench/ablation_overhead \
  | tee BENCH_overhead.txt)

# Session-service ablation writes BENCH_service.json into its cwd.  The
# LISI_SERVICE_* knobs must not leak in: the harness pins its own pool
# shape (2x2-rank sessions vs one serialized 4-rank World).
(cd "$ART" && env -u LISI_SERVICE_SESSIONS -u LISI_SERVICE_RANKS \
  -u LISI_SERVICE_QUEUE_DEPTH -u LISI_SERVICE_BATCH_WINDOW \
  "$OLDPWD"/build/bench/ablation_service | tee BENCH_service.txt)

# google-benchmark ablations emit JSON natively.  Note: the bundled
# google-benchmark predates unit suffixes — min_time takes a bare double.
for b in collectives rarray params formats matfree; do
  ./build/bench/ablation_"$b" --benchmark_min_time=0.05 \
    --benchmark_out="$ART/BENCH_$b.json" --benchmark_out_format=json
done

# Self-timed text harnesses.
./build/bench/ablation_mg > "$ART/BENCH_mg.txt"

echo "bench: artifacts in $ART"
ls -1 "$ART"
