#!/usr/bin/env bash
# Run every ablation benchmark and collect the artifacts in one place
# (bench-artifacts/): JSON where the harness produces it, the raw table
# otherwise.  LISI_BENCH_REPS=n shortens the self-timed runs.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j --target ablation_pipeline ablation_reuse \
  ablation_collectives ablation_rarray ablation_params ablation_formats \
  ablation_matfree ablation_mg

ART="$PWD/bench-artifacts"
mkdir -p "$ART"

# Pipelined-Krylov ablation writes BENCH_pipeline.json into its cwd.
(cd "$ART" && "$OLDPWD"/build/bench/ablation_pipeline \
  | tee BENCH_pipeline.txt)

# Operator-reuse ablation writes BENCH_reuse.json into its cwd.
(cd "$ART" && "$OLDPWD"/build/bench/ablation_reuse \
  | tee BENCH_reuse.txt)

# google-benchmark ablations emit JSON natively.  Note: the bundled
# google-benchmark predates unit suffixes — min_time takes a bare double.
for b in collectives rarray params formats matfree; do
  ./build/bench/ablation_"$b" --benchmark_min_time=0.05 \
    --benchmark_out="$ART/BENCH_$b.json" --benchmark_out_format=json
done

# Self-timed text harnesses.
./build/bench/ablation_mg > "$ART/BENCH_mg.txt"

echo "bench: artifacts in $ART"
ls -1 "$ART"
