#!/usr/bin/env bash
# Fast developer loop for the project-specific static-analysis pass.
#
# Builds (only) the lisi_lint tool into the regular build/ tree and runs it
# over the full scanned surface — seconds, not the minutes of the complete
# scripts/verify.sh flow, whose 1d stage runs the identical command.  Any
# extra arguments are passed straight through, so
#
#   scripts/lint.sh src/service              # one directory
#   scripts/lint.sh --rules raw-tag src      # one rule
#   LISI_LINT_RULES=rank-branch scripts/lint.sh
#
# all work as expected.  Exit status is the tool's: 0 clean, 1 findings,
# 2 usage/tool error.
set -euo pipefail
cd "$(dirname "$0")/.."

if [ ! -d build ]; then
  cmake -B build -S . > /dev/null
fi
cmake --build build -j --target lisi_lint > /dev/null

if [ "$#" -gt 0 ]; then
  exec ./build/tools/lisi_lint/lisi_lint --root . "$@"
fi
exec ./build/tools/lisi_lint/lisi_lint --root . src tests bench examples
