/* refsolver — the reference LISI plugin: CG + Jacobi in ~300 lines of C.
 *
 * This is the out-of-tree proof for the lisi_abi_v1 boundary: it includes
 * ONLY lisi_abi.h (plus libc) and builds standalone with
 *
 *   cc -std=c99 -shared -fPIC -I<dir with lisi_abi.h> refsolver.c \
 *      -o librefsolver.so
 *
 * (scripts/verify.sh does exactly that against a copied header).  It is
 * also the tutorial source for docs/PLUGIN_ABI.md — read them side by side.
 *
 * The solver mirrors the host's built-in pksp CG + Jacobi operation for
 * operation: same residual recurrences, same fused two-lane reduction for
 * <z,z> and <r,z>, same loop order, same convergence test — and the
 * distributed pieces (operator application, global sums) go through the
 * host callbacks onto the host's deterministic kernels.  The iterates are
 * therefore bitwise identical to the built-in solve, which is what
 * tests/plugin_test.cpp asserts at p=1 and p=4.
 */
#include <math.h>
#include <stdlib.h>
#include <string.h>

#include "lisi_abi.h"

typedef struct {
  lisi_abi_host_v1 host; /* copied: the caller's struct may not outlive us */
  /* operator */
  int32_t local_rows;
  int32_t global_rows;
  int32_t start_row;
  double* inv_diag; /* Jacobi: 1/diag, built at set_operator */
  int have_operator;
  /* options */
  double rtol;
  double atol;
  int32_t maxits;
  int use_jacobi;
  /* last solve */
  lisi_abi_solve_info_v1 last;
  /* scratch (sized at set_operator) */
  double* r;
  double* z;
  double* p;
  double* ap;
} refsolver;

static int bad(double v) { return isnan(v) || isinf(v); }

static int32_t rs_create(const lisi_abi_host_v1* host, void** solver) {
  refsolver* s;
  if (host == NULL || solver == NULL || host->apply_operator == NULL ||
      host->allreduce_sum == NULL) {
    return LISI_ABI_ERR_ARG;
  }
  s = (refsolver*)calloc(1, sizeof(refsolver));
  if (s == NULL) return LISI_ABI_ERR_INTERNAL;
  s->host = *host;
  s->rtol = 1e-6;
  s->atol = 1e-50;
  s->maxits = 10000;
  s->use_jacobi = 1;
  *solver = s;
  return LISI_ABI_OK;
}

static int32_t rs_set_option(void* solver, const char* key,
                             const char* value) {
  refsolver* s = (refsolver*)solver;
  if (s == NULL || key == NULL || value == NULL) return LISI_ABI_ERR_ARG;
  if (strcmp(key, "solver") == 0) {
    return strcmp(value, "cg") == 0 ? LISI_ABI_OK : LISI_ABI_ERR_ARG;
  }
  if (strcmp(key, "preconditioner") == 0) {
    if (strcmp(value, "jacobi") == 0) {
      s->use_jacobi = 1;
      return LISI_ABI_OK;
    }
    if (strcmp(value, "none") == 0) {
      s->use_jacobi = 0;
      return LISI_ABI_OK;
    }
    return LISI_ABI_ERR_ARG;
  }
  if (strcmp(key, "tol") == 0) {
    char* end = NULL;
    double v = strtod(value, &end);
    if (end == value || v < 0.0) return LISI_ABI_ERR_ARG;
    s->rtol = v;
    return LISI_ABI_OK;
  }
  if (strcmp(key, "atol") == 0) {
    char* end = NULL;
    double v = strtod(value, &end);
    if (end == value || v < 0.0) return LISI_ABI_ERR_ARG;
    s->atol = v;
    return LISI_ABI_OK;
  }
  if (strcmp(key, "maxits") == 0) {
    char* end = NULL;
    long v = strtol(value, &end, 10);
    if (end == value || v < 1) return LISI_ABI_ERR_ARG;
    s->maxits = (int32_t)v;
    return LISI_ABI_OK;
  }
  /* Unknown KEY: the host forwards its whole table and skips these. */
  return LISI_ABI_ERR_UNSUPPORTED;
}

static int32_t rs_set_operator(void* solver, int32_t local_rows,
                               int32_t global_rows, int32_t start_row,
                               const int32_t* row_ptr, const int32_t* col_idx,
                               const double* values) {
  refsolver* s = (refsolver*)solver;
  int32_t i, k;
  if (s == NULL || local_rows < 0 || global_rows < local_rows ||
      start_row < 0 || row_ptr == NULL || col_idx == NULL || values == NULL) {
    return LISI_ABI_ERR_ARG;
  }
  free(s->inv_diag);
  free(s->r);
  free(s->z);
  free(s->p);
  free(s->ap);
  s->inv_diag = (double*)calloc((size_t)local_rows, sizeof(double));
  s->r = (double*)malloc((size_t)local_rows * sizeof(double));
  s->z = (double*)malloc((size_t)local_rows * sizeof(double));
  s->p = (double*)malloc((size_t)local_rows * sizeof(double));
  s->ap = (double*)malloc((size_t)local_rows * sizeof(double));
  if (s->inv_diag == NULL || s->r == NULL || s->z == NULL || s->p == NULL ||
      s->ap == NULL) {
    s->have_operator = 0;
    return LISI_ABI_ERR_INTERNAL;
  }
  /* Diagonal extraction: sum every entry sitting on the diagonal (global
   * column == start_row + local row), exactly like the host's
   * localDiagonal(), then invert once — the Jacobi apply is a multiply. */
  for (i = 0; i < local_rows; ++i) {
    for (k = row_ptr[i]; k < row_ptr[i + 1]; ++k) {
      if (col_idx[k] == start_row + i) s->inv_diag[i] += values[k];
    }
  }
  for (i = 0; i < local_rows; ++i) {
    if (s->inv_diag[i] == 0.0) {
      s->have_operator = 0;
      return LISI_ABI_ERR_NUMERIC; /* zero diagonal: Jacobi breaks down */
    }
    s->inv_diag[i] = 1.0 / s->inv_diag[i];
  }
  s->local_rows = local_rows;
  s->global_rows = global_rows;
  s->start_row = start_row;
  s->have_operator = 1;
  return LISI_ABI_OK;
}

/* z = M^{-1} r: Jacobi multiply or identity copy (same as the host PCs). */
static void rs_apply_pc(const refsolver* s, const double* r, double* z) {
  int32_t i;
  if (s->use_jacobi) {
    for (i = 0; i < s->local_rows; ++i) z[i] = s->inv_diag[i] * r[i];
  } else {
    memcpy(z, r, (size_t)s->local_rows * sizeof(double));
  }
}

static int32_t rs_solve(void* solver, const double* b, double* x,
                        int32_t local_rows, lisi_abi_solve_info_v1* info) {
  refsolver* s = (refsolver*)solver;
  const lisi_abi_host_v1* h;
  double local2[2], zzrz[2], znorm, target, rz;
  int32_t n, i, it, rc;
  if (s == NULL || b == NULL || x == NULL || info == NULL) {
    return LISI_ABI_ERR_ARG;
  }
  if (!s->have_operator) return LISI_ABI_ERR_STATE;
  if (local_rows != s->local_rows) return LISI_ABI_ERR_ARG;
  h = &s->host;
  n = s->local_rows;
  memset(&s->last, 0, sizeof(s->last));
  memset(info, 0, sizeof(*info));

  /* r = b - A x (x is the incoming initial guess, host-zeroed by default) */
  rc = h->apply_operator(h->ctx, x, s->r, n);
  if (rc != LISI_ABI_OK) return rc;
  for (i = 0; i < n; ++i) s->r[i] = b[i] - s->r[i];
  rs_apply_pc(s, s->r, s->z);
  /* <z,z> and <r,z> share one two-lane global sum; each lane is bitwise
   * the standalone dot (the host reduces lanes element-wise). */
  local2[0] = 0.0;
  local2[1] = 0.0;
  for (i = 0; i < n; ++i) local2[0] += s->z[i] * s->z[i];
  for (i = 0; i < n; ++i) local2[1] += s->r[i] * s->z[i];
  rc = h->allreduce_sum(h->ctx, local2, zzrz, 2);
  if (rc != LISI_ABI_OK) return rc;
  znorm = sqrt(zzrz[0]);
  target = s->rtol * znorm;
  s->last.residual_norm = znorm;
  if (bad(znorm)) goto done; /* diverged-nan: converged stays 0 */
  if (znorm <= s->atol || znorm <= target) {
    s->last.converged = 1;
    goto done;
  }

  memcpy(s->p, s->z, (size_t)n * sizeof(double));
  rz = zzrz[1];
  for (it = 1; it <= s->maxits; ++it) {
    double pap, alpha, beta, rz_new;
    rc = h->apply_operator(h->ctx, s->p, s->ap, n);
    if (rc != LISI_ABI_OK) return rc;
    local2[0] = 0.0;
    for (i = 0; i < n; ++i) local2[0] += s->p[i] * s->ap[i];
    rc = h->allreduce_sum(h->ctx, local2, &pap, 1);
    if (rc != LISI_ABI_OK) return rc;
    if (pap == 0.0 || bad(pap)) {
      s->last.iterations = it - 1; /* breakdown before the update */
      goto done;
    }
    alpha = rz / pap;
    for (i = 0; i < n; ++i) {
      x[i] += alpha * s->p[i];
      s->r[i] -= alpha * s->ap[i];
    }
    rs_apply_pc(s, s->r, s->z);
    local2[0] = 0.0;
    local2[1] = 0.0;
    for (i = 0; i < n; ++i) local2[0] += s->z[i] * s->z[i];
    for (i = 0; i < n; ++i) local2[1] += s->r[i] * s->z[i];
    rc = h->allreduce_sum(h->ctx, local2, zzrz, 2);
    if (rc != LISI_ABI_OK) return rc;
    znorm = sqrt(zzrz[0]);
    s->last.iterations = it;
    s->last.residual_norm = znorm;
    if (bad(znorm)) goto done;
    if (znorm <= s->atol || znorm <= target) {
      s->last.converged = 1;
      goto done;
    }
    rz_new = zzrz[1];
    if (rz == 0.0) goto done; /* breakdown */
    beta = rz_new / rz;
    rz = rz_new;
    for (i = 0; i < n; ++i) s->p[i] = s->z[i] + beta * s->p[i];
  }
  /* fell out of the loop: maxits exceeded, converged stays 0 */

done:
  *info = s->last;
  return LISI_ABI_OK;
}

static int32_t rs_get_info(void* solver, const char* key, double* value) {
  refsolver* s = (refsolver*)solver;
  if (s == NULL || key == NULL || value == NULL) return LISI_ABI_ERR_ARG;
  if (strcmp(key, "iterations") == 0) {
    *value = (double)s->last.iterations;
    return LISI_ABI_OK;
  }
  if (strcmp(key, "residual_norm") == 0) {
    *value = s->last.residual_norm;
    return LISI_ABI_OK;
  }
  if (strcmp(key, "converged") == 0) {
    *value = (double)s->last.converged;
    return LISI_ABI_OK;
  }
  return LISI_ABI_ERR_UNSUPPORTED;
}

static int32_t rs_destroy(void* solver) {
  refsolver* s = (refsolver*)solver;
  if (s == NULL) return LISI_ABI_ERR_ARG;
  free(s->inv_diag);
  free(s->r);
  free(s->z);
  free(s->p);
  free(s->ap);
  free(s);
  return LISI_ABI_OK;
}

static const lisi_abi_v1 kRefsolverTable = {
    LISI_ABI_VERSION,
    "refsolver",
    "1.0",
    rs_create,
    rs_set_option,
    rs_set_operator,
    rs_solve,
    rs_get_info,
    rs_destroy,
};

const lisi_abi_v1* lisi_plugin_query(uint32_t abi_version) {
  if (abi_version != LISI_ABI_VERSION) return NULL;
  return &kRefsolverTable;
}
