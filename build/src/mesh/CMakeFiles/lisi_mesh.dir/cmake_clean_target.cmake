file(REMOVE_RECURSE
  "liblisi_mesh.a"
)
