
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mesh/mesh_io.cpp" "src/mesh/CMakeFiles/lisi_mesh.dir/mesh_io.cpp.o" "gcc" "src/mesh/CMakeFiles/lisi_mesh.dir/mesh_io.cpp.o.d"
  "/root/repo/src/mesh/pde5pt.cpp" "src/mesh/CMakeFiles/lisi_mesh.dir/pde5pt.cpp.o" "gcc" "src/mesh/CMakeFiles/lisi_mesh.dir/pde5pt.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sparse/CMakeFiles/lisi_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/lisi_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/lisi_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
