file(REMOVE_RECURSE
  "CMakeFiles/lisi_mesh.dir/mesh_io.cpp.o"
  "CMakeFiles/lisi_mesh.dir/mesh_io.cpp.o.d"
  "CMakeFiles/lisi_mesh.dir/pde5pt.cpp.o"
  "CMakeFiles/lisi_mesh.dir/pde5pt.cpp.o.d"
  "liblisi_mesh.a"
  "liblisi_mesh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lisi_mesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
