# Empty dependencies file for lisi_mesh.
# This may be replaced when dependencies are built.
