file(REMOVE_RECURSE
  "liblisi_hymg.a"
)
