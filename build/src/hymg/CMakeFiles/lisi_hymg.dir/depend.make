# Empty dependencies file for lisi_hymg.
# This may be replaced when dependencies are built.
