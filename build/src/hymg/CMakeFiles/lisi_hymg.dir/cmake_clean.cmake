file(REMOVE_RECURSE
  "CMakeFiles/lisi_hymg.dir/hymg.cpp.o"
  "CMakeFiles/lisi_hymg.dir/hymg.cpp.o.d"
  "liblisi_hymg.a"
  "liblisi_hymg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lisi_hymg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
