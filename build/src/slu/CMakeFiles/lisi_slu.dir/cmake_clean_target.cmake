file(REMOVE_RECURSE
  "liblisi_slu.a"
)
