# Empty dependencies file for lisi_slu.
# This may be replaced when dependencies are built.
