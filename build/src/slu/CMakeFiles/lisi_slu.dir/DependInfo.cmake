
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/slu/slu.cpp" "src/slu/CMakeFiles/lisi_slu.dir/slu.cpp.o" "gcc" "src/slu/CMakeFiles/lisi_slu.dir/slu.cpp.o.d"
  "/root/repo/src/slu/slu_ordering.cpp" "src/slu/CMakeFiles/lisi_slu.dir/slu_ordering.cpp.o" "gcc" "src/slu/CMakeFiles/lisi_slu.dir/slu_ordering.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sparse/CMakeFiles/lisi_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/lisi_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/lisi_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
