file(REMOVE_RECURSE
  "CMakeFiles/lisi_slu.dir/slu.cpp.o"
  "CMakeFiles/lisi_slu.dir/slu.cpp.o.d"
  "CMakeFiles/lisi_slu.dir/slu_ordering.cpp.o"
  "CMakeFiles/lisi_slu.dir/slu_ordering.cpp.o.d"
  "liblisi_slu.a"
  "liblisi_slu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lisi_slu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
