file(REMOVE_RECURSE
  "liblisi_cca.a"
)
