file(REMOVE_RECURSE
  "CMakeFiles/lisi_cca.dir/cca.cpp.o"
  "CMakeFiles/lisi_cca.dir/cca.cpp.o.d"
  "liblisi_cca.a"
  "liblisi_cca.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lisi_cca.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
