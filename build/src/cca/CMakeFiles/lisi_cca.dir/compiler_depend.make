# Empty compiler generated dependencies file for lisi_cca.
# This may be replaced when dependencies are built.
