file(REMOVE_RECURSE
  "CMakeFiles/lisi_support.dir/error.cpp.o"
  "CMakeFiles/lisi_support.dir/error.cpp.o.d"
  "CMakeFiles/lisi_support.dir/stats.cpp.o"
  "CMakeFiles/lisi_support.dir/stats.cpp.o.d"
  "CMakeFiles/lisi_support.dir/string_util.cpp.o"
  "CMakeFiles/lisi_support.dir/string_util.cpp.o.d"
  "liblisi_support.a"
  "liblisi_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lisi_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
