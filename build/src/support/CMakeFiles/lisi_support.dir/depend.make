# Empty dependencies file for lisi_support.
# This may be replaced when dependencies are built.
