file(REMOVE_RECURSE
  "liblisi_support.a"
)
