file(REMOVE_RECURSE
  "CMakeFiles/lisi_sparse.dir/convert.cpp.o"
  "CMakeFiles/lisi_sparse.dir/convert.cpp.o.d"
  "CMakeFiles/lisi_sparse.dir/dist_csr.cpp.o"
  "CMakeFiles/lisi_sparse.dir/dist_csr.cpp.o.d"
  "CMakeFiles/lisi_sparse.dir/formats.cpp.o"
  "CMakeFiles/lisi_sparse.dir/formats.cpp.o.d"
  "CMakeFiles/lisi_sparse.dir/generate.cpp.o"
  "CMakeFiles/lisi_sparse.dir/generate.cpp.o.d"
  "CMakeFiles/lisi_sparse.dir/matmul.cpp.o"
  "CMakeFiles/lisi_sparse.dir/matmul.cpp.o.d"
  "CMakeFiles/lisi_sparse.dir/matrix_market.cpp.o"
  "CMakeFiles/lisi_sparse.dir/matrix_market.cpp.o.d"
  "CMakeFiles/lisi_sparse.dir/ops.cpp.o"
  "CMakeFiles/lisi_sparse.dir/ops.cpp.o.d"
  "CMakeFiles/lisi_sparse.dir/partition.cpp.o"
  "CMakeFiles/lisi_sparse.dir/partition.cpp.o.d"
  "liblisi_sparse.a"
  "liblisi_sparse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lisi_sparse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
