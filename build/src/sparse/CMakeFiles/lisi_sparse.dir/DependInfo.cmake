
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sparse/convert.cpp" "src/sparse/CMakeFiles/lisi_sparse.dir/convert.cpp.o" "gcc" "src/sparse/CMakeFiles/lisi_sparse.dir/convert.cpp.o.d"
  "/root/repo/src/sparse/dist_csr.cpp" "src/sparse/CMakeFiles/lisi_sparse.dir/dist_csr.cpp.o" "gcc" "src/sparse/CMakeFiles/lisi_sparse.dir/dist_csr.cpp.o.d"
  "/root/repo/src/sparse/formats.cpp" "src/sparse/CMakeFiles/lisi_sparse.dir/formats.cpp.o" "gcc" "src/sparse/CMakeFiles/lisi_sparse.dir/formats.cpp.o.d"
  "/root/repo/src/sparse/generate.cpp" "src/sparse/CMakeFiles/lisi_sparse.dir/generate.cpp.o" "gcc" "src/sparse/CMakeFiles/lisi_sparse.dir/generate.cpp.o.d"
  "/root/repo/src/sparse/matmul.cpp" "src/sparse/CMakeFiles/lisi_sparse.dir/matmul.cpp.o" "gcc" "src/sparse/CMakeFiles/lisi_sparse.dir/matmul.cpp.o.d"
  "/root/repo/src/sparse/matrix_market.cpp" "src/sparse/CMakeFiles/lisi_sparse.dir/matrix_market.cpp.o" "gcc" "src/sparse/CMakeFiles/lisi_sparse.dir/matrix_market.cpp.o.d"
  "/root/repo/src/sparse/ops.cpp" "src/sparse/CMakeFiles/lisi_sparse.dir/ops.cpp.o" "gcc" "src/sparse/CMakeFiles/lisi_sparse.dir/ops.cpp.o.d"
  "/root/repo/src/sparse/partition.cpp" "src/sparse/CMakeFiles/lisi_sparse.dir/partition.cpp.o" "gcc" "src/sparse/CMakeFiles/lisi_sparse.dir/partition.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/lisi_support.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/lisi_comm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
