# Empty compiler generated dependencies file for lisi_sparse.
# This may be replaced when dependencies are built.
