file(REMOVE_RECURSE
  "liblisi_sparse.a"
)
