file(REMOVE_RECURSE
  "CMakeFiles/lisi_comm.dir/comm.cpp.o"
  "CMakeFiles/lisi_comm.dir/comm.cpp.o.d"
  "CMakeFiles/lisi_comm.dir/comm_handle.cpp.o"
  "CMakeFiles/lisi_comm.dir/comm_handle.cpp.o.d"
  "liblisi_comm.a"
  "liblisi_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lisi_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
