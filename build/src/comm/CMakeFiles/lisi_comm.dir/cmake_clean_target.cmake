file(REMOVE_RECURSE
  "liblisi_comm.a"
)
