# Empty compiler generated dependencies file for lisi_comm.
# This may be replaced when dependencies are built.
