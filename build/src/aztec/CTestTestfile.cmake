# CMake generated Testfile for 
# Source directory: /root/repo/src/aztec
# Build directory: /root/repo/build/src/aztec
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
