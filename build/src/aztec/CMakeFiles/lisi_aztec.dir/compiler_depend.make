# Empty compiler generated dependencies file for lisi_aztec.
# This may be replaced when dependencies are built.
