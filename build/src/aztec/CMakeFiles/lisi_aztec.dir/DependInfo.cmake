
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/aztec/aztecoo.cpp" "src/aztec/CMakeFiles/lisi_aztec.dir/aztecoo.cpp.o" "gcc" "src/aztec/CMakeFiles/lisi_aztec.dir/aztecoo.cpp.o.d"
  "/root/repo/src/aztec/map.cpp" "src/aztec/CMakeFiles/lisi_aztec.dir/map.cpp.o" "gcc" "src/aztec/CMakeFiles/lisi_aztec.dir/map.cpp.o.d"
  "/root/repo/src/aztec/row_matrix.cpp" "src/aztec/CMakeFiles/lisi_aztec.dir/row_matrix.cpp.o" "gcc" "src/aztec/CMakeFiles/lisi_aztec.dir/row_matrix.cpp.o.d"
  "/root/repo/src/aztec/vector.cpp" "src/aztec/CMakeFiles/lisi_aztec.dir/vector.cpp.o" "gcc" "src/aztec/CMakeFiles/lisi_aztec.dir/vector.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sparse/CMakeFiles/lisi_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/lisi_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/lisi_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
