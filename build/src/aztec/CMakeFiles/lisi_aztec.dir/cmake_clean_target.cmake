file(REMOVE_RECURSE
  "liblisi_aztec.a"
)
