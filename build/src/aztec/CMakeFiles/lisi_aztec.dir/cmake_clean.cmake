file(REMOVE_RECURSE
  "CMakeFiles/lisi_aztec.dir/aztecoo.cpp.o"
  "CMakeFiles/lisi_aztec.dir/aztecoo.cpp.o.d"
  "CMakeFiles/lisi_aztec.dir/map.cpp.o"
  "CMakeFiles/lisi_aztec.dir/map.cpp.o.d"
  "CMakeFiles/lisi_aztec.dir/row_matrix.cpp.o"
  "CMakeFiles/lisi_aztec.dir/row_matrix.cpp.o.d"
  "CMakeFiles/lisi_aztec.dir/vector.cpp.o"
  "CMakeFiles/lisi_aztec.dir/vector.cpp.o.d"
  "liblisi_aztec.a"
  "liblisi_aztec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lisi_aztec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
