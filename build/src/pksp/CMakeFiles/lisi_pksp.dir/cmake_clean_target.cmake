file(REMOVE_RECURSE
  "liblisi_pksp.a"
)
