# Empty compiler generated dependencies file for lisi_pksp.
# This may be replaced when dependencies are built.
