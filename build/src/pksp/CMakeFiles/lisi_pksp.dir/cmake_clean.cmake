file(REMOVE_RECURSE
  "CMakeFiles/lisi_pksp.dir/pksp.cpp.o"
  "CMakeFiles/lisi_pksp.dir/pksp.cpp.o.d"
  "CMakeFiles/lisi_pksp.dir/pksp_krylov.cpp.o"
  "CMakeFiles/lisi_pksp.dir/pksp_krylov.cpp.o.d"
  "CMakeFiles/lisi_pksp.dir/pksp_pc.cpp.o"
  "CMakeFiles/lisi_pksp.dir/pksp_pc.cpp.o.d"
  "liblisi_pksp.a"
  "liblisi_pksp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lisi_pksp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
