
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pksp/pksp.cpp" "src/pksp/CMakeFiles/lisi_pksp.dir/pksp.cpp.o" "gcc" "src/pksp/CMakeFiles/lisi_pksp.dir/pksp.cpp.o.d"
  "/root/repo/src/pksp/pksp_krylov.cpp" "src/pksp/CMakeFiles/lisi_pksp.dir/pksp_krylov.cpp.o" "gcc" "src/pksp/CMakeFiles/lisi_pksp.dir/pksp_krylov.cpp.o.d"
  "/root/repo/src/pksp/pksp_pc.cpp" "src/pksp/CMakeFiles/lisi_pksp.dir/pksp_pc.cpp.o" "gcc" "src/pksp/CMakeFiles/lisi_pksp.dir/pksp_pc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sparse/CMakeFiles/lisi_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/lisi_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/lisi_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
