# Empty compiler generated dependencies file for lisi_core.
# This may be replaced when dependencies are built.
