file(REMOVE_RECURSE
  "CMakeFiles/lisi_core.dir/aztec_component.cpp.o"
  "CMakeFiles/lisi_core.dir/aztec_component.cpp.o.d"
  "CMakeFiles/lisi_core.dir/hymg_component.cpp.o"
  "CMakeFiles/lisi_core.dir/hymg_component.cpp.o.d"
  "CMakeFiles/lisi_core.dir/pde_driver.cpp.o"
  "CMakeFiles/lisi_core.dir/pde_driver.cpp.o.d"
  "CMakeFiles/lisi_core.dir/pksp_component.cpp.o"
  "CMakeFiles/lisi_core.dir/pksp_component.cpp.o.d"
  "CMakeFiles/lisi_core.dir/register.cpp.o"
  "CMakeFiles/lisi_core.dir/register.cpp.o.d"
  "CMakeFiles/lisi_core.dir/slu_component.cpp.o"
  "CMakeFiles/lisi_core.dir/slu_component.cpp.o.d"
  "CMakeFiles/lisi_core.dir/solver_base.cpp.o"
  "CMakeFiles/lisi_core.dir/solver_base.cpp.o.d"
  "liblisi_core.a"
  "liblisi_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lisi_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
