file(REMOVE_RECURSE
  "liblisi_core.a"
)
