file(REMOVE_RECURSE
  "CMakeFiles/fig4_switching.dir/fig4_switching.cpp.o"
  "CMakeFiles/fig4_switching.dir/fig4_switching.cpp.o.d"
  "fig4_switching"
  "fig4_switching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_switching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
