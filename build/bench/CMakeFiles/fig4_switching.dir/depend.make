# Empty dependencies file for fig4_switching.
# This may be replaced when dependencies are built.
