file(REMOVE_RECURSE
  "CMakeFiles/table1_scaling.dir/table1_scaling.cpp.o"
  "CMakeFiles/table1_scaling.dir/table1_scaling.cpp.o.d"
  "table1_scaling"
  "table1_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
