file(REMOVE_RECURSE
  "CMakeFiles/ablation_matfree.dir/ablation_matfree.cpp.o"
  "CMakeFiles/ablation_matfree.dir/ablation_matfree.cpp.o.d"
  "ablation_matfree"
  "ablation_matfree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_matfree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
