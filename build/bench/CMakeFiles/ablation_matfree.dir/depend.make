# Empty dependencies file for ablation_matfree.
# This may be replaced when dependencies are built.
