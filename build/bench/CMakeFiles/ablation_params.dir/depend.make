# Empty dependencies file for ablation_params.
# This may be replaced when dependencies are built.
