# Empty compiler generated dependencies file for ablation_mg.
# This may be replaced when dependencies are built.
