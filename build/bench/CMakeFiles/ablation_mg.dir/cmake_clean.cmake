file(REMOVE_RECURSE
  "CMakeFiles/ablation_mg.dir/ablation_mg.cpp.o"
  "CMakeFiles/ablation_mg.dir/ablation_mg.cpp.o.d"
  "ablation_mg"
  "ablation_mg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_mg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
