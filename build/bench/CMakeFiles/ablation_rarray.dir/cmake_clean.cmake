file(REMOVE_RECURSE
  "CMakeFiles/ablation_rarray.dir/ablation_rarray.cpp.o"
  "CMakeFiles/ablation_rarray.dir/ablation_rarray.cpp.o.d"
  "ablation_rarray"
  "ablation_rarray.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_rarray.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
