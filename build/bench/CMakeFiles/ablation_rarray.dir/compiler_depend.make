# Empty compiler generated dependencies file for ablation_rarray.
# This may be replaced when dependencies are built.
