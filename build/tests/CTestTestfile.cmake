# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/comm_test[1]_include.cmake")
include("/root/repo/build/tests/sparse_formats_test[1]_include.cmake")
include("/root/repo/build/tests/sparse_convert_test[1]_include.cmake")
include("/root/repo/build/tests/sparse_ops_test[1]_include.cmake")
include("/root/repo/build/tests/sparse_io_test[1]_include.cmake")
include("/root/repo/build/tests/sparse_dist_test[1]_include.cmake")
include("/root/repo/build/tests/mesh_test[1]_include.cmake")
include("/root/repo/build/tests/pksp_test[1]_include.cmake")
include("/root/repo/build/tests/aztec_test[1]_include.cmake")
include("/root/repo/build/tests/slu_test[1]_include.cmake")
include("/root/repo/build/tests/hymg_test[1]_include.cmake")
include("/root/repo/build/tests/cca_test[1]_include.cmake")
include("/root/repo/build/tests/lisi_rarray_test[1]_include.cmake")
include("/root/repo/build/tests/lisi_solver_test[1]_include.cmake")
include("/root/repo/build/tests/sparse_matmul_test[1]_include.cmake")
include("/root/repo/build/tests/lisi_crossbackend_test[1]_include.cmake")
include("/root/repo/build/tests/failure_injection_test[1]_include.cmake")
