file(REMOVE_RECURSE
  "CMakeFiles/lisi_rarray_test.dir/lisi_rarray_test.cpp.o"
  "CMakeFiles/lisi_rarray_test.dir/lisi_rarray_test.cpp.o.d"
  "lisi_rarray_test"
  "lisi_rarray_test.pdb"
  "lisi_rarray_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lisi_rarray_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
