# Empty compiler generated dependencies file for lisi_rarray_test.
# This may be replaced when dependencies are built.
