
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/lisi_solver_test.cpp" "tests/CMakeFiles/lisi_solver_test.dir/lisi_solver_test.cpp.o" "gcc" "tests/CMakeFiles/lisi_solver_test.dir/lisi_solver_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lisi/CMakeFiles/lisi_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cca/CMakeFiles/lisi_cca.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/lisi_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/pksp/CMakeFiles/lisi_pksp.dir/DependInfo.cmake"
  "/root/repo/build/src/aztec/CMakeFiles/lisi_aztec.dir/DependInfo.cmake"
  "/root/repo/build/src/slu/CMakeFiles/lisi_slu.dir/DependInfo.cmake"
  "/root/repo/build/src/hymg/CMakeFiles/lisi_hymg.dir/DependInfo.cmake"
  "/root/repo/build/src/sparse/CMakeFiles/lisi_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/lisi_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/lisi_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
