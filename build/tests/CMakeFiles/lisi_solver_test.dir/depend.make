# Empty dependencies file for lisi_solver_test.
# This may be replaced when dependencies are built.
