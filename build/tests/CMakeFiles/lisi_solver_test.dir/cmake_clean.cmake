file(REMOVE_RECURSE
  "CMakeFiles/lisi_solver_test.dir/lisi_solver_test.cpp.o"
  "CMakeFiles/lisi_solver_test.dir/lisi_solver_test.cpp.o.d"
  "lisi_solver_test"
  "lisi_solver_test.pdb"
  "lisi_solver_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lisi_solver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
