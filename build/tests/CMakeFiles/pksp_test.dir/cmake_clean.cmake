file(REMOVE_RECURSE
  "CMakeFiles/pksp_test.dir/pksp_test.cpp.o"
  "CMakeFiles/pksp_test.dir/pksp_test.cpp.o.d"
  "pksp_test"
  "pksp_test.pdb"
  "pksp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pksp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
