# Empty dependencies file for pksp_test.
# This may be replaced when dependencies are built.
