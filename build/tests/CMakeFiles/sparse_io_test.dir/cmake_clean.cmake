file(REMOVE_RECURSE
  "CMakeFiles/sparse_io_test.dir/sparse_io_test.cpp.o"
  "CMakeFiles/sparse_io_test.dir/sparse_io_test.cpp.o.d"
  "sparse_io_test"
  "sparse_io_test.pdb"
  "sparse_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparse_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
