# Empty dependencies file for sparse_io_test.
# This may be replaced when dependencies are built.
