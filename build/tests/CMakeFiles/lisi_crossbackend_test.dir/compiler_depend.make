# Empty compiler generated dependencies file for lisi_crossbackend_test.
# This may be replaced when dependencies are built.
