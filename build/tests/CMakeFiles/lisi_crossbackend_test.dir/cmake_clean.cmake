file(REMOVE_RECURSE
  "CMakeFiles/lisi_crossbackend_test.dir/lisi_crossbackend_test.cpp.o"
  "CMakeFiles/lisi_crossbackend_test.dir/lisi_crossbackend_test.cpp.o.d"
  "lisi_crossbackend_test"
  "lisi_crossbackend_test.pdb"
  "lisi_crossbackend_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lisi_crossbackend_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
