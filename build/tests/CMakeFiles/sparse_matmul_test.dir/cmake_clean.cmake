file(REMOVE_RECURSE
  "CMakeFiles/sparse_matmul_test.dir/sparse_matmul_test.cpp.o"
  "CMakeFiles/sparse_matmul_test.dir/sparse_matmul_test.cpp.o.d"
  "sparse_matmul_test"
  "sparse_matmul_test.pdb"
  "sparse_matmul_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparse_matmul_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
