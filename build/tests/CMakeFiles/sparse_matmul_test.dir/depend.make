# Empty dependencies file for sparse_matmul_test.
# This may be replaced when dependencies are built.
