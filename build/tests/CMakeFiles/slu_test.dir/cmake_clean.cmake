file(REMOVE_RECURSE
  "CMakeFiles/slu_test.dir/slu_test.cpp.o"
  "CMakeFiles/slu_test.dir/slu_test.cpp.o.d"
  "slu_test"
  "slu_test.pdb"
  "slu_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slu_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
