# Empty compiler generated dependencies file for slu_test.
# This may be replaced when dependencies are built.
