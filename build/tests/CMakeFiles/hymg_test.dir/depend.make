# Empty dependencies file for hymg_test.
# This may be replaced when dependencies are built.
