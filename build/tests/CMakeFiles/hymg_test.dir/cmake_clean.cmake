file(REMOVE_RECURSE
  "CMakeFiles/hymg_test.dir/hymg_test.cpp.o"
  "CMakeFiles/hymg_test.dir/hymg_test.cpp.o.d"
  "hymg_test"
  "hymg_test.pdb"
  "hymg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hymg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
