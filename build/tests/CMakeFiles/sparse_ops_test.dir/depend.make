# Empty dependencies file for sparse_ops_test.
# This may be replaced when dependencies are built.
