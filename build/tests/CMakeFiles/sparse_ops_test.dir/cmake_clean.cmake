file(REMOVE_RECURSE
  "CMakeFiles/sparse_ops_test.dir/sparse_ops_test.cpp.o"
  "CMakeFiles/sparse_ops_test.dir/sparse_ops_test.cpp.o.d"
  "sparse_ops_test"
  "sparse_ops_test.pdb"
  "sparse_ops_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparse_ops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
