file(REMOVE_RECURSE
  "CMakeFiles/sparse_convert_test.dir/sparse_convert_test.cpp.o"
  "CMakeFiles/sparse_convert_test.dir/sparse_convert_test.cpp.o.d"
  "sparse_convert_test"
  "sparse_convert_test.pdb"
  "sparse_convert_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparse_convert_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
