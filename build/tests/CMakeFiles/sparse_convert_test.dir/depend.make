# Empty dependencies file for sparse_convert_test.
# This may be replaced when dependencies are built.
