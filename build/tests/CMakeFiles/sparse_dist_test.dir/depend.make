# Empty dependencies file for sparse_dist_test.
# This may be replaced when dependencies are built.
