file(REMOVE_RECURSE
  "CMakeFiles/sparse_dist_test.dir/sparse_dist_test.cpp.o"
  "CMakeFiles/sparse_dist_test.dir/sparse_dist_test.cpp.o.d"
  "sparse_dist_test"
  "sparse_dist_test.pdb"
  "sparse_dist_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparse_dist_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
