file(REMOVE_RECURSE
  "CMakeFiles/sparse_formats_test.dir/sparse_formats_test.cpp.o"
  "CMakeFiles/sparse_formats_test.dir/sparse_formats_test.cpp.o.d"
  "sparse_formats_test"
  "sparse_formats_test.pdb"
  "sparse_formats_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparse_formats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
