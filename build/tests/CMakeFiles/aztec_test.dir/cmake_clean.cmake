file(REMOVE_RECURSE
  "CMakeFiles/aztec_test.dir/aztec_test.cpp.o"
  "CMakeFiles/aztec_test.dir/aztec_test.cpp.o.d"
  "aztec_test"
  "aztec_test.pdb"
  "aztec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aztec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
