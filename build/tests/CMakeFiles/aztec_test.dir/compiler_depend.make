# Empty compiler generated dependencies file for aztec_test.
# This may be replaced when dependencies are built.
