# Empty compiler generated dependencies file for native_apis.
# This may be replaced when dependencies are built.
