file(REMOVE_RECURSE
  "CMakeFiles/native_apis.dir/native_apis.cpp.o"
  "CMakeFiles/native_apis.dir/native_apis.cpp.o.d"
  "native_apis"
  "native_apis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/native_apis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
