file(REMOVE_RECURSE
  "CMakeFiles/solver_switching.dir/solver_switching.cpp.o"
  "CMakeFiles/solver_switching.dir/solver_switching.cpp.o.d"
  "solver_switching"
  "solver_switching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solver_switching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
