# Empty compiler generated dependencies file for solver_switching.
# This may be replaced when dependencies are built.
