file(REMOVE_RECURSE
  "CMakeFiles/multi_rhs_reuse.dir/multi_rhs_reuse.cpp.o"
  "CMakeFiles/multi_rhs_reuse.dir/multi_rhs_reuse.cpp.o.d"
  "multi_rhs_reuse"
  "multi_rhs_reuse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_rhs_reuse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
