# Empty compiler generated dependencies file for multi_rhs_reuse.
# This may be replaced when dependencies are built.
