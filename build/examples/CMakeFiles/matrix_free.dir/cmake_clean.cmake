file(REMOVE_RECURSE
  "CMakeFiles/matrix_free.dir/matrix_free.cpp.o"
  "CMakeFiles/matrix_free.dir/matrix_free.cpp.o.d"
  "matrix_free"
  "matrix_free.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matrix_free.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
