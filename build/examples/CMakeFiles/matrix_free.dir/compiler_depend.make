# Empty compiler generated dependencies file for matrix_free.
# This may be replaced when dependencies are built.
