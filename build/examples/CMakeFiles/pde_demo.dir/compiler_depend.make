# Empty compiler generated dependencies file for pde_demo.
# This may be replaced when dependencies are built.
