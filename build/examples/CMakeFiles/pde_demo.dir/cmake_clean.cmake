file(REMOVE_RECURSE
  "CMakeFiles/pde_demo.dir/pde_demo.cpp.o"
  "CMakeFiles/pde_demo.dir/pde_demo.cpp.o.d"
  "pde_demo"
  "pde_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pde_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
