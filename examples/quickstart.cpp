// Quickstart: solve a small sparse system through the LISI interface.
//
// Shows the complete call sequence of the paper's SIDL specification:
// register components, instantiate a solver, declare the data distribution
// (§6.3), pass the assembled system (setupMatrix / setupRHS), configure via
// the generic parameter methods (§6.5), solve, and read the status array.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "cca/cca.hpp"
#include "comm/comm.hpp"
#include "comm/comm_handle.hpp"
#include "lisi/sparse_solver.hpp"

int main() {
  using namespace lisi;
  registerSolverComponents();

  // Run as a 2-rank SPMD program (each rank owns a block of rows).
  comm::World::run(2, [](comm::Comm& comm) {
    // The global system (8x8 tridiagonal, solution = all ones):
    //   2 -1          x0   1
    //  -1  2 -1   ... x1 = 0 ...
    const int n = 8;
    const int startRow = comm.rank() * (n / 2);
    const int localRows = n / 2;

    // Assemble this rank's rows as COO triplets with global indices.
    std::vector<double> vals;
    std::vector<int> rows, cols;
    for (int i = startRow; i < startRow + localRows; ++i) {
      if (i > 0) {
        rows.push_back(i); cols.push_back(i - 1); vals.push_back(-1.0);
      }
      rows.push_back(i); cols.push_back(i); vals.push_back(2.0);
      if (i + 1 < n) {
        rows.push_back(i); cols.push_back(i + 1); vals.push_back(-1.0);
      }
    }
    // b = A * ones.
    std::vector<double> b(static_cast<std::size_t>(localRows), 0.0);
    for (std::size_t k = 0; k < vals.size(); ++k) {
      b[static_cast<std::size_t>(rows[k] - startRow)] += vals[k] * 1.0;
    }

    // Instantiate a solver component (swap the class name to change the
    // underlying package — nothing below this line would change).
    cca::Framework fw;
    fw.instantiate("solver", kPkspComponentClass);
    auto solver =
        fw.getProvidesPortAs<SparseSolver>("solver", kSparseSolverPortName);

    const long handle = comm::registerHandle(comm);
    int rc = solver->initialize(handle);
    if (rc == 0) rc = solver->setStartRow(startRow);
    if (rc == 0) rc = solver->setLocalRows(localRows);
    if (rc == 0) rc = solver->setLocalNNZ(static_cast<int>(vals.size()));
    if (rc == 0) rc = solver->setGlobalCols(n);
    if (rc == 0) rc = solver->set("solver", "cg");
    if (rc == 0) rc = solver->set("preconditioner", "jacobi");
    if (rc == 0) rc = solver->setDouble("tol", 1e-12);
    if (rc == 0) {
      rc = solver->setupMatrix(
          RArray<const double>(vals.data(), static_cast<int>(vals.size())),
          RArray<const int>(rows.data(), static_cast<int>(rows.size())),
          RArray<const int>(cols.data(), static_cast<int>(cols.size())),
          static_cast<int>(vals.size()));
    }
    if (rc == 0) {
      rc = solver->setupRHS(RArray<const double>(b.data(), localRows),
                            localRows, 1);
    }
    std::vector<double> x(static_cast<std::size_t>(localRows), 0.0);
    std::vector<double> status(kStatusLength, 0.0);
    if (rc == 0) {
      rc = solver->solve(RArray<double>(x.data(), localRows),
                         RArray<double>(status.data(), kStatusLength),
                         localRows, kStatusLength);
    }
    comm::releaseHandle(handle);

    if (comm.rank() == 0) {
      std::printf("solver config: %s\n", solver->get_all().c_str());
      std::printf("return code %d, %d iterations, residual %.2e\n", rc,
                  static_cast<int>(status[kStatusIterations]),
                  status[kStatusResidualNorm]);
    }
    comm.barrier();
    std::printf("rank %d solution:", comm.rank());
    for (double v : x) std::printf(" %.6f", v);
    std::printf("   (expected: all 1.0)\n");
  });
  return 0;
}
