// Figure 4 demo: dynamic solver switching.
//
// One application/driver component solves the paper's PDE through four
// different solver components — PETSc-style, Trilinos-style, SuperLU-style,
// hypre-style — by re-wiring the CCA connection at run time.  The driver
// code never changes; "in practice, only one of the links would show up in
// the component diagram" (§8).
//
// Usage: solver_switching [gridN] [ranks]     (defaults: 63 4)
#include <cstdio>
#include <cstdlib>

#include "comm/comm.hpp"
#include "lisi/pde_driver.hpp"

int main(int argc, char** argv) {
  const int gridN = argc > 1 ? std::atoi(argv[1]) : 63;
  const int ranks = argc > 2 ? std::atoi(argv[2]) : 4;
  if (gridN < 3 || ranks < 1) {
    std::fprintf(stderr, "usage: %s [gridN>=3] [ranks>=1]\n", argv[0]);
    return 1;
  }

  lisi::registerSolverComponents();
  lisi::registerDriverComponent();

  std::printf("Figure 4 demo: u_xx + u_yy - 3u_x = f on a %dx%d grid, "
              "%d ranks\n\n",
              gridN, gridN, ranks);
  std::printf("%-28s %10s %8s %12s %10s\n", "solver component", "wall(s)",
              "iters", "residual", "status");

  struct Case {
    const char* cls;
    std::map<std::string, std::string> params;
  };
  const Case cases[] = {
      {lisi::kPkspComponentClass,
       {{"solver", "gmres"}, {"preconditioner", "ilu"}, {"tol", "1e-8"},
        {"maxits", "10000"}}},
      {lisi::kAztecComponentClass,
       {{"solver", "bicgstab"}, {"preconditioner", "ilu"}, {"tol", "1e-8"},
        {"maxits", "10000"}}},
      {lisi::kSluComponentClass, {{"ordering", "rcm"}}},
      {lisi::kHymgComponentClass,
       {{"mg_grid_n", std::to_string(gridN)}, {"mg_bx", "3"},
        {"tol", "1e-8"}, {"maxits", "200"}}},
  };

  lisi::comm::World::run(ranks, [&](lisi::comm::Comm& comm) {
    cca::Framework fw;
    fw.instantiate("driver", lisi::kDriverComponentClass);
    // All four candidates live in the framework simultaneously.
    fw.instantiate("petsc-style", lisi::kPkspComponentClass);
    fw.instantiate("trilinos-style", lisi::kAztecComponentClass);
    fw.instantiate("superlu-style", lisi::kSluComponentClass);
    fw.instantiate("hypre-style", lisi::kHymgComponentClass);
    const char* instances[] = {"petsc-style", "trilinos-style",
                               "superlu-style", "hypre-style"};
    auto go = fw.getProvidesPortAs<lisi::GoPort>("driver", lisi::kGoPortName);

    for (int i = 0; i < 4; ++i) {
      // Dynamic switch: move the single live link to the next solver.
      fw.connect("driver", lisi::kSparseSolverPortName, instances[i],
                 lisi::kSparseSolverPortName);
      lisi::PdeDriverConfig config;
      config.gridN = gridN;
      config.solverParams = cases[i].params;
      const lisi::PdeDriverResult res = go->go(comm, config);
      if (comm.rank() == 0) {
        std::printf("%-28s %10.4f %8d %12.3e %10s\n", instances[i],
                    res.wallSeconds, res.iterations, res.residualNorm,
                    res.solved ? "ok" : "FAILED");
      }
      fw.disconnect("driver", lisi::kSparseSolverPortName);
    }
    if (comm.rank() == 0) {
      std::printf("\nNo driver code changed between rows — only the CCA "
                  "connection.\n");
    }
  });
  return 0;
}
