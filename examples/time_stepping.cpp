// Implicit time stepping through the LISI port: the canonical client for
// the operator-change contract.
//
// Each step of an implicit scheme re-assembles the system matrix with new
// values (the time-step scaling, a lagged coefficient, ...) on the SAME
// sparsity pattern.  The port detects this — a structural fingerprint is
// compared collectively on every setupMatrix — and downgrades the re-setup
// to a value-only update: the halo plan, the symbolic factorization (slu)
// and the preconditioner skeleton (pksp) all survive from step 0.
//
// The per-step timings printed below come straight out of the solve status
// array (kStatusSetupSeconds / kStatusSolveSeconds): step 0 pays the full
// build, steps >= 1 are cheap.
#include <cstdio>
#include <vector>

#include "cca/cca.hpp"
#include "comm/comm.hpp"
#include "comm/comm_handle.hpp"
#include "lisi/sparse_solver.hpp"
#include "mesh/pde5pt.hpp"
#include "support/timer.hpp"

namespace {

using namespace lisi;

constexpr int kGridN = 64;
constexpr int kSteps = 5;

struct StepTiming {
  double setupSec = 0.0;
  double solveSec = 0.0;
  int iters = 0;
};

/// One implicit step: feed the step's matrix values (same pattern every
/// step), then setupRHS + solve, returning the port's per-phase timings.
StepTiming doStep(SparseSolver& s, const sparse::CsrMatrix& a,
                  const std::vector<double>& b) {
  const int m = a.rows;
  int rc = s.setupMatrix(RArray<const double>(a.values.data(), a.nnz()),
                         RArray<const int>(a.rowPtr.data(), m + 1),
                         RArray<const int>(a.colIdx.data(), a.nnz()),
                         SparseStruct::kCsr, m + 1, a.nnz());
  LISI_CHECK(rc == 0, "setupMatrix failed");
  rc = s.setupRHS(RArray<const double>(b.data(), static_cast<int>(b.size())),
                  m, 1);
  LISI_CHECK(rc == 0, "setupRHS failed");
  std::vector<double> x(b.size(), 0.0);
  std::vector<double> st(kStatusLength, 0.0);
  rc = s.solve(RArray<double>(x.data(), static_cast<int>(x.size())),
               RArray<double>(st.data(), kStatusLength), m, kStatusLength);
  LISI_CHECK(rc == 0, "solve failed");
  StepTiming out;
  out.setupSec = st[kStatusSetupSeconds];
  out.solveSec = st[kStatusSolveSeconds];
  out.iters = static_cast<int>(st[kStatusIterations]);
  return out;
}

/// Run kSteps implicit steps against one backend and print the per-step
/// phase times.  The matrix values drift by 2% per step (a shrinking
/// pseudo-time-step), the pattern never changes.
void runBackend(cca::Framework& fw, comm::Comm& comm, const char* cls,
                const char* name, const mesh::Pde5ptLocalSystem& sys,
                bool iterative) {
  fw.instantiate(name, cls);
  auto s = fw.getProvidesPortAs<SparseSolver>(name, kSparseSolverPortName);
  long handle = comm::registerHandle(comm);
  int rc = s->initialize(handle);
  if (rc == 0) rc = s->setStartRow(sys.startRow);
  if (rc == 0) rc = s->setLocalRows(sys.localA.rows);
  if (rc == 0) rc = s->setGlobalCols(sys.globalN);
  LISI_CHECK(rc == 0, "solver setup failed");
  if (iterative) {
    s->set("solver", "gmres");
    s->set("preconditioner", "ilu");
    s->setBool("reuse_preconditioner", true);
    s->setDouble("tol", 1e-8);
  } else {
    s->set("ordering", "rcm");
  }

  if (comm.rank() == 0) std::printf("[%s]\n", name);
  for (int step = 0; step < kSteps; ++step) {
    sparse::CsrMatrix a = sys.localA;
    for (auto& v : a.values) v *= 1.0 + 0.02 * step;  // same pattern
    const StepTiming t = doStep(*s, a, sys.localB);
    if (comm.rank() == 0) {
      std::printf("  step %d: setup %.6fs (%s)  solve %.4fs",
                  step, t.setupSec,
                  step == 0 ? "full build       " : "value-only update",
                  t.solveSec);
      if (t.iters > 0) std::printf("  (%d iterations)", t.iters);
      std::printf("\n");
    }
  }
  comm::releaseHandle(handle);
}

}  // namespace

int main() {
  registerSolverComponents();
  const int ranks = 2;

  comm::World::run(ranks, [&](comm::Comm& comm) {
    mesh::Pde5ptSpec spec;
    spec.gridN = kGridN;
    const mesh::Pde5ptLocalSystem sys =
        mesh::assembleLocal(spec, comm.rank(), comm.size());
    cca::Framework fw;

    if (comm.rank() == 0) {
      std::printf("implicit time stepping, %d steps on a %dx%d grid "
                  "(%d ranks)\n"
                  "the matrix changes values every step but keeps its "
                  "pattern;\nthe port downgrades steps >= 1 to value-only "
                  "updates.\n\n",
                  kSteps, kGridN, kGridN, ranks);
    }

    runBackend(fw, comm, kSluComponentClass, "slu", sys, false);
    runBackend(fw, comm, kPkspComponentClass, "pksp", sys, true);
  });
  return 0;
}
