// §5.2 usage scenarios (b), (c), (d): reuse of precomputed objects.
//
//  (b) precompute a reusable LU factorization (direct component),
//  (c) multiple right-hand sides against the same matrix,
//  (d) a sequence of matrices with the same sparsity pattern, reusing the
//      preconditioner across solves.
//
// The timings printed make the reuse visible: solve #2..#k are much
// cheaper than solve #1 when the expensive object survives.
#include <cstdio>

#include "cca/cca.hpp"
#include "comm/comm.hpp"
#include "comm/comm_handle.hpp"
#include "lisi/sparse_solver.hpp"
#include "mesh/pde5pt.hpp"
#include "support/timer.hpp"

namespace {

using namespace lisi;

struct Ctx {
  comm::Comm comm;
  mesh::Pde5ptLocalSystem sys;
  long handle = 0;
};

std::shared_ptr<SparseSolver> makeSolver(cca::Framework& fw, const char* cls,
                                         const char* name, Ctx& ctx) {
  fw.instantiate(name, cls);
  auto s = fw.getProvidesPortAs<SparseSolver>(name, kSparseSolverPortName);
  int rc = s->initialize(ctx.handle);
  if (rc == 0) rc = s->setStartRow(ctx.sys.startRow);
  if (rc == 0) rc = s->setLocalRows(ctx.sys.localA.rows);
  if (rc == 0) rc = s->setGlobalCols(ctx.sys.globalN);
  LISI_CHECK(rc == 0, "solver setup failed");
  return s;
}

int feedMatrix(SparseSolver& s, const sparse::CsrMatrix& a) {
  const int m = a.rows;
  return s.setupMatrix(RArray<const double>(a.values.data(), a.nnz()),
                       RArray<const int>(a.rowPtr.data(), m + 1),
                       RArray<const int>(a.colIdx.data(), a.nnz()),
                       SparseStruct::kCsr, m + 1, a.nnz());
}

/// One setupRHS+solve with the per-phase times the port reports back
/// through the status array.
struct SolveTiming {
  double wallSec = 0.0;   ///< wall clock around the solve() call
  double setupSec = 0.0;  ///< status[kStatusSetupSeconds]: operator adaptation
  double solveSec = 0.0;  ///< status[kStatusSolveSeconds]: backend solve
  int iters = 0;
};

SolveTiming solveOnce(SparseSolver& s, const std::vector<double>& b,
                      int nRhs) {
  const int m = static_cast<int>(b.size()) / nRhs;
  s.setupRHS(RArray<const double>(b.data(), static_cast<int>(b.size())), m,
             nRhs);
  std::vector<double> x(b.size(), 0.0);
  std::vector<double> st(kStatusLength, 0.0);
  WallTimer t;
  const int rc =
      s.solve(RArray<double>(x.data(), static_cast<int>(x.size())),
              RArray<double>(st.data(), kStatusLength), m, kStatusLength);
  LISI_CHECK(rc == 0, "solve failed");
  SolveTiming out;
  out.wallSec = t.seconds();
  out.setupSec = st[kStatusSetupSeconds];
  out.solveSec = st[kStatusSolveSeconds];
  out.iters = static_cast<int>(st[kStatusIterations]);
  return out;
}

}  // namespace

int main() {
  registerSolverComponents();
  const int gridN = 80;
  const int ranks = 2;

  comm::World::run(ranks, [&](comm::Comm& comm) {
    mesh::Pde5ptSpec spec;
    spec.gridN = gridN;
    Ctx ctx{comm, mesh::assembleLocal(spec, comm.rank(), comm.size()), 0};
    ctx.handle = comm::registerHandle(comm);
    const int m = ctx.sys.localA.rows;
    cca::Framework fw;

    if (comm.rank() == 0) {
      std::printf("reuse scenarios on a %dx%d grid (%d ranks)\n\n", gridN,
                  gridN, ranks);
    }

    // --- (b) factor once, solve repeatedly (direct component) ----------
    {
      auto slu = makeSolver(fw, kSluComponentClass, "slu", ctx);
      feedMatrix(*slu, ctx.sys.localA);
      double first = 0, rest = 0;
      for (int k = 0; k < 4; ++k) {
        const SolveTiming t = solveOnce(*slu, ctx.sys.localB, 1);
        (k == 0 ? first : rest) += t.wallSec;
      }
      if (comm.rank() == 0) {
        std::printf("(b) direct solver: first solve (factor+solve) %.4fs, "
                    "next three (reuse factor) %.4fs total\n",
                    first, rest);
      }
    }

    // --- (c) several right-hand sides in one call ----------------------
    // The port accepts all lanes through one setupRHS/solve pair either
    // way; "multi_rhs" selects how the backend consumes them.  "blocked"
    // fuses the lanes into one blocked Krylov solve (one operator setup,
    // one fused reduction stream per iteration); "sequential" loops the
    // single-vector path per lane.  Same answers, different comm volume.
    {
      auto pksp = makeSolver(fw, kPkspComponentClass, "pksp", ctx);
      pksp->set("solver", "gmres");
      pksp->set("preconditioner", "ilu");
      pksp->setDouble("tol", 1e-8);
      feedMatrix(*pksp, ctx.sys.localA);
      const int nRhs = 3;
      std::vector<double> rhs;
      for (int k = 0; k < nRhs; ++k) {
        for (double v : ctx.sys.localB) rhs.push_back(v * (k + 1));
      }
      for (const char* mode : {"sequential", "blocked"}) {
        pksp->set("multi_rhs", mode);
        const SolveTiming t = solveOnce(*pksp, rhs, nRhs);
        if (comm.rank() == 0) {
          std::printf("(c) %d right-hand sides, multi_rhs=%-10s setup "
                      "%.6fs, solve %.4fs (%d iterations)\n",
                      nRhs, mode, t.setupSec, t.solveSec, t.iters);
        }
      }
    }

    // --- (d) same pattern, new values; preconditioner reuse ------------
    {
      auto pksp = makeSolver(fw, kPkspComponentClass, "pksp2", ctx);
      pksp->set("solver", "gmres");
      pksp->set("preconditioner", "ilu");
      pksp->setDouble("tol", 1e-8);
      for (const bool reuse : {false, true}) {
        pksp->setBool("reuse_preconditioner", reuse);
        if (comm.rank() == 0 && reuse) {
          std::printf("(d) per-phase breakdown with reuse on:\n");
        }
        double total = 0;
        int iters = 0;
        for (int step = 0; step < 4; ++step) {
          sparse::CsrMatrix a = ctx.sys.localA;
          for (auto& v : a.values) v *= 1.0 + 0.02 * step;  // same pattern
          feedMatrix(*pksp, a);
          const SolveTiming t = solveOnce(*pksp, ctx.sys.localB, 1);
          total += t.wallSec;
          iters = t.iters;
          // Per-phase breakdown from the status array.  Steps >= 1 present
          // the same sparsity pattern, so the port classifies the change as
          // "same structure" and the setup phase degenerates to a value-only
          // update of the existing distributed operator -- no halo-plan
          // rebuild, and (with reuse on) no preconditioner rebuild either.
          if (comm.rank() == 0 && reuse) {
            std::printf("    step %d: setup %.6fs (%s), solve %.4fs\n", step,
                        t.setupSec,
                        step == 0 ? "plan build" : "value-only update",
                        t.solveSec);
          }
        }
        if (comm.rank() == 0) {
          std::printf("(d) 4 same-pattern matrices, reuse_preconditioner=%s:"
                      " %.4fs total (last solve %d iterations)\n",
                      reuse ? "true " : "false", total, iters);
        }
      }
    }
    (void)m;
    comm::releaseHandle(ctx.handle);
  });
  return 0;
}
