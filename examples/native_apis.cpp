// The problem LISI solves, made visible: the same linear system solved
// through each package's *native* API.
//
// §2.1 of the paper: applications get tightly coupled to one package's
// idioms (M3D had 767 lines in 67 subroutines calling PETSc KSP), and each
// package has its own learning curve.  Compare the three code shapes below
// — opaque C handles (pksp), object composition (aztec), phase-separated
// structs (slu) — with the single LISI sequence in quickstart.cpp.
#include <cstdio>

#include "aztec/aztecoo.hpp"
#include "comm/comm.hpp"
#include "mesh/pde5pt.hpp"
#include "pksp/pksp.hpp"
#include "slu/slu.hpp"
#include "sparse/convert.hpp"
#include "sparse/dist_csr.hpp"

int main() {
  const int gridN = 40;
  const int ranks = 2;
  std::printf("the same %dx%d PDE system through three native APIs "
              "(%d ranks)\n\n",
              gridN, gridN, ranks);

  lisi::comm::World::run(ranks, [&](lisi::comm::Comm& comm) {
    lisi::mesh::Pde5ptSpec spec;
    spec.gridN = gridN;
    const auto sys = lisi::mesh::assembleLocal(spec, comm.rank(), comm.size());
    const int m = sys.localA.rows;

    // ---- 1. PKSP: PETSc-style opaque handles + error codes -------------
    {
      lisi::sparse::DistCsrMatrix a(comm, sys.globalN, sys.globalN,
                                    sys.startRow, sys.localA);
      pksp::KSP ksp = nullptr;
      pksp::KSPCreate(comm, &ksp);
      pksp::KSPSetOperator(ksp, &a);
      pksp::KSPSetFromString(ksp, "-ksp_type gmres -pc_type ilu "
                                  "-ksp_rtol 1e-8");
      std::vector<double> x(static_cast<std::size_t>(m));
      const int rc = pksp::KSPSolve(ksp, std::span<const double>(sys.localB),
                                    std::span<double>(x));
      int its = 0;
      double rnorm = 0;
      pksp::KSPGetIterationNumber(ksp, &its);
      pksp::KSPGetResidualNorm(ksp, &rnorm);
      pksp::KSPDestroy(&ksp);
      if (comm.rank() == 0) {
        std::printf("pksp  (handle API):   rc=%d  iters=%-4d residual=%.2e\n",
                    rc, its, rnorm);
      }
    }

    // ---- 2. Aztec: Trilinos-style object composition --------------------
    {
      aztec::Map map(sys.globalN, m, comm);
      aztec::CrsMatrix a(map, sys.localA);
      aztec::Vector x(map);
      const aztec::Vector b(map, sys.localB);
      aztec::AztecOO solver(a, x, b);
      solver.setOption(aztec::AZ_solver, aztec::AZ_gmres)
          .setOption(aztec::AZ_precond, aztec::AZ_dom_decomp)
          .setParam(aztec::AZ_tol, 1e-8);
      const int rc = solver.iterate();
      if (comm.rank() == 0) {
        std::printf("aztec (object API):   rc=%d  iters=%-4d residual=%.2e\n",
                    rc, solver.numIters(), solver.trueResidual());
      }
    }

    // ---- 3. SLU: SuperLU-style phase separation (serial package) --------
    {
      lisi::sparse::DistCsrMatrix a(comm, sys.globalN, sys.globalN,
                                    sys.startRow, sys.localA);
      const auto global = a.gatherToRoot(0);
      const auto bGlobal =
          a.gatherVectorToRoot(std::span<const double>(sys.localB), 0);
      std::vector<double> xGlobal;
      slu::Stats st;
      if (comm.rank() == 0) {
        slu::Options opts;            // phase 0: options struct
        opts.ordering = slu::Ordering::kRcm;
        const auto fact = slu::Factorization::factorize(  // phase 1: factor
            lisi::sparse::csrToCsc(global), opts);
        xGlobal.resize(bGlobal.size());
        fact.solve(bGlobal, xGlobal);                     // phase 2: solve
        st = fact.stats();
      }
      const auto xLocal = a.scatterVectorFromRoot(
          comm.rank() == 0 ? std::span<const double>(xGlobal)
                           : std::span<const double>(),
          0);
      std::vector<double> r(xLocal.size());
      a.spmv(std::span<const double>(xLocal), std::span<double>(r));
      for (std::size_t i = 0; i < r.size(); ++i) r[i] = sys.localB[i] - r[i];
      const double rnorm = lisi::sparse::distNorm2(comm, r);
      if (comm.rank() == 0) {
        std::printf("slu   (phase API):    rc=0  fill=%.2fx residual=%.2e\n",
                    st.fillRatio, rnorm);
      }
    }

    if (comm.rank() == 0) {
      std::printf("\nthree different call shapes, three different parameter"
                  " vocabularies —\nthe cost LISI's single interface removes"
                  " (see examples/quickstart.cpp).\n");
    }
  });
  return 0;
}
