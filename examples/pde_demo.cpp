// The paper's full experiment pipeline (§8, Figure 3), end to end:
//
//  [a] a parallel mesh data generator assembles the 5-point operator for
//      u_xx + u_yy - 3u_x = f on the unit square (Dirichlet BCs,
//      f = (2 - 6x - x^2) sin(x)), block rows conformal over ranks, and
//      writes per-rank mesh data files "on each compute node";
//  [b] each rank reads its file back and the application component solves
//      the system through the LISI port in SPMD fashion.
//
// A manufactured-solution variant is also run so the discretization and
// the full solve path can be checked against an analytic answer.
//
// Usage: pde_demo [gridN] [ranks]     (defaults: 100 4)
#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "cca/cca.hpp"
#include "comm/comm.hpp"
#include "comm/comm_handle.hpp"
#include "lisi/sparse_solver.hpp"
#include "mesh/mesh_io.hpp"
#include "mesh/pde5pt.hpp"
#include "sparse/dist_csr.hpp"

int main(int argc, char** argv) {
  using namespace lisi;
  const int gridN = argc > 1 ? std::atoi(argv[1]) : 100;
  const int ranks = argc > 2 ? std::atoi(argv[2]) : 4;
  if (gridN < 3 || ranks < 1) {
    std::fprintf(stderr, "usage: %s [gridN>=3] [ranks>=1]\n", argv[0]);
    return 1;
  }
  registerSolverComponents();
  const std::string meshDir =
      (std::filesystem::temp_directory_path() / "lisi_pde_demo").string();

  comm::World::run(ranks, [&](comm::Comm& comm) {
    // [a] Generate and persist this rank's share of the mesh data.
    mesh::Pde5ptSpec spec;
    spec.gridN = gridN;
    {
      const auto generated =
          mesh::assembleLocal(spec, comm.rank(), comm.size());
      mesh::writeLocalSystem(meshDir, comm.rank(), generated);
    }
    comm.barrier();

    // [b] Read the local file back and solve through LISI.
    const auto sys = mesh::readLocalSystem(meshDir, comm.rank());
    const int m = sys.localA.rows;

    cca::Framework fw;
    fw.instantiate("solver", kPkspComponentClass);
    auto solver =
        fw.getProvidesPortAs<SparseSolver>("solver", kSparseSolverPortName);
    const long handle = comm::registerHandle(comm);
    int rc = solver->initialize(handle);
    if (rc == 0) rc = solver->setStartRow(sys.startRow);
    if (rc == 0) rc = solver->setLocalRows(m);
    if (rc == 0) rc = solver->setLocalNNZ(sys.localA.nnz());
    if (rc == 0) rc = solver->setGlobalCols(sys.globalN);
    if (rc == 0) rc = solver->set("solver", "bicgstab");
    if (rc == 0) rc = solver->set("preconditioner", "ilu");
    if (rc == 0) rc = solver->setDouble("tol", 1e-10);
    if (rc == 0) rc = solver->setInt("maxits", 20000);
    if (rc == 0) {
      rc = solver->setupMatrix(
          RArray<const double>(sys.localA.values.data(), sys.localA.nnz()),
          RArray<const int>(sys.localA.rowPtr.data(), m + 1),
          RArray<const int>(sys.localA.colIdx.data(), sys.localA.nnz()),
          SparseStruct::kCsr, m + 1, sys.localA.nnz());
    }
    if (rc == 0) {
      rc = solver->setupRHS(RArray<const double>(sys.localB.data(), m), m, 1);
    }
    std::vector<double> x(static_cast<std::size_t>(m), 0.0);
    std::vector<double> status(kStatusLength, 0.0);
    if (rc == 0) {
      rc = solver->solve(RArray<double>(x.data(), m),
                         RArray<double>(status.data(), kStatusLength), m,
                         kStatusLength);
    }
    if (comm.rank() == 0) {
      std::printf("paper forcing: rc=%d, %d iterations, residual %.3e, "
                  "solve %.4fs (nnz=%lld)\n",
                  rc, static_cast<int>(status[kStatusIterations]),
                  status[kStatusResidualNorm], status[kStatusSolveSeconds],
                  mesh::pde5ptNnz(gridN));
    }

    // Manufactured-solution check: same pipeline, known analytic answer.
    {
      mesh::Pde5ptSpec mSpec;
      mSpec.gridN = gridN;
      mSpec.forcing = mesh::manufacturedForcing;
      const auto mSys = mesh::assembleLocal(mSpec, comm.rank(), comm.size());
      int rc2 = solver->setupMatrix(
          RArray<const double>(mSys.localA.values.data(), mSys.localA.nnz()),
          RArray<const int>(mSys.localA.rowPtr.data(), m + 1),
          RArray<const int>(mSys.localA.colIdx.data(), mSys.localA.nnz()),
          SparseStruct::kCsr, m + 1, mSys.localA.nnz());
      if (rc2 == 0) {
        rc2 = solver->setupRHS(RArray<const double>(mSys.localB.data(), m), m,
                               1);
      }
      std::vector<double> u(static_cast<std::size_t>(m), 0.0);
      if (rc2 == 0) {
        rc2 = solver->solve(RArray<double>(u.data(), m),
                            RArray<double>(status.data(), kStatusLength), m,
                            kStatusLength);
      }
      const auto uStar = mesh::sampleField(gridN, mesh::manufacturedSolution);
      double localErr = 0.0;
      for (int i = 0; i < m; ++i) {
        localErr = std::max(
            localErr, std::abs(u[static_cast<std::size_t>(i)] -
                               uStar[static_cast<std::size_t>(sys.startRow + i)]));
      }
      const double err = comm.allreduceValue(localErr, comm::ReduceOp::kMax);
      if (comm.rank() == 0) {
        const double h = 1.0 / (gridN + 1);
        std::printf("manufactured solution: rc=%d, max error %.3e "
                    "(h^2 = %.3e — discretization-limited)\n",
                    rc2, err, h * h);
      }
    }
    comm::releaseHandle(handle);
  });
  std::filesystem::remove_all(meshDir);
  return 0;
}
