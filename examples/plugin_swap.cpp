// Runtime plugin replacement — the paper's Figure 4 scenario across the
// C ABI boundary (docs/PLUGIN_ABI.md).
//
// Flow: discover backends from LISI_PLUGIN_PATH, solve a system with the
// built-in pksp CG and with the dlopen-loaded refsolver (the two must
// agree bitwise — the plugin iterates on the host's kernels), then RELOAD
// the plugin mid-run (re-registration swaps the factory under the same
// class name), instantiate the replacement on the SAME operator, and
// solve again.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   LISI_PLUGIN_PATH=build/plugins/refsolver ./build/examples/plugin_swap
//   LISI_PLUGIN_PATH=... ./build/examples/plugin_swap 64 4   # n, ranks
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "cca/cca.hpp"
#include "comm/comm.hpp"
#include "comm/comm_handle.hpp"
#include "lisi/sparse_solver.hpp"
#include "plugin/plugin.hpp"

namespace {

constexpr const char* kPluginClass = "plugin.refsolver";

/// Solve the n-point tridiagonal system (solution = all ones) with the
/// component class `cls`; returns this rank's solution block, or empty on
/// failure.
std::vector<double> solveWith(lisi::comm::Comm& comm, const std::string& cls,
                              int n, std::vector<double>* status) {
  using namespace lisi;
  const int base = n / comm.size();
  const int rem = n % comm.size();
  const int localRows = base + (comm.rank() < rem ? 1 : 0);
  const int startRow = comm.rank() * base + std::min(comm.rank(), rem);

  std::vector<double> vals;
  std::vector<int> rows, cols;
  for (int i = startRow; i < startRow + localRows; ++i) {
    if (i > 0) { rows.push_back(i); cols.push_back(i - 1); vals.push_back(-1.0); }
    rows.push_back(i); cols.push_back(i); vals.push_back(2.0);
    if (i + 1 < n) { rows.push_back(i); cols.push_back(i + 1); vals.push_back(-1.0); }
  }
  std::vector<double> b(static_cast<std::size_t>(localRows), 0.0);
  for (std::size_t k = 0; k < vals.size(); ++k) {
    b[static_cast<std::size_t>(rows[k] - startRow)] += vals[k];
  }

  cca::Framework fw;
  fw.instantiate("solver", cls);
  auto solver =
      fw.getProvidesPortAs<SparseSolver>("solver", kSparseSolverPortName);
  const long handle = comm::registerHandle(comm);
  int rc = solver->initialize(handle);
  if (rc == 0) rc = solver->setStartRow(startRow);
  if (rc == 0) rc = solver->setLocalRows(localRows);
  if (rc == 0) rc = solver->setGlobalCols(n);
  if (rc == 0) rc = solver->set("solver", "cg");
  if (rc == 0) rc = solver->set("preconditioner", "jacobi");
  if (rc == 0) rc = solver->set("tol", "1e-12");
  if (rc == 0) {
    rc = solver->setupMatrix(
        RArray<const double>(vals.data(), static_cast<int>(vals.size())),
        RArray<const int>(rows.data(), static_cast<int>(rows.size())),
        RArray<const int>(cols.data(), static_cast<int>(cols.size())),
        static_cast<int>(vals.size()));
  }
  if (rc == 0) {
    rc = solver->setupRHS(RArray<const double>(b.data(), localRows),
                          localRows, 1);
  }
  std::vector<double> x(static_cast<std::size_t>(localRows), 0.0);
  status->assign(lisi::kStatusLength, 0.0);
  if (rc == 0) {
    rc = solver->solve(RArray<double>(x.data(), localRows),
                       RArray<double>(status->data(), lisi::kStatusLength),
                       localRows, lisi::kStatusLength);
  }
  comm::releaseHandle(handle);
  if (rc != 0) {
    std::fprintf(stderr, "rank %d: %s solve failed rc=%d\n", comm.rank(),
                 cls.c_str(), rc);
    return {};
  }
  return x;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lisi;
  const int n = argc > 1 ? std::atoi(argv[1]) : 48;
  const int ranks = argc > 2 ? std::atoi(argv[2]) : 2;
  if (n < 2 || ranks < 1 || ranks > n) {
    std::fprintf(stderr, "usage: plugin_swap [n >= 2] [1 <= ranks <= n]\n");
    return 2;
  }

  registerSolverComponents();
  std::string pluginPath;
  for (const auto& report : plugin::PluginRegistry::instance().loadFromEnv()) {
    std::printf("load %-60s %s%s\n", report.path.c_str(),
                report.ok ? report.className.c_str() : report.error.c_str(),
                report.replaced ? " (replaced)" : "");
    if (report.ok && report.className == kPluginClass) {
      pluginPath = report.path;
    }
  }
  if (pluginPath.empty()) {
    std::fprintf(stderr,
                 "plugin_swap: %s not found; point LISI_PLUGIN_PATH at the "
                 "directory containing librefsolver.so\n",
                 kPluginClass);
    return 2;
  }

  std::atomic<int> failures{0};
  comm::World::run(ranks, [&](comm::Comm& comm) {
    std::vector<double> st;
    // Phase 1: built-in baseline and first plugin solve must agree bitwise.
    const std::vector<double> ref =
        solveWith(comm, kPkspComponentClass, n, &st);
    const std::vector<double> first = solveWith(comm, kPluginClass, n, &st);
    if (ref.empty() || first.empty() || ref.size() != first.size()) {
      ++failures;
      return;
    }
    double diff = 0.0;
    for (std::size_t i = 0; i < ref.size(); ++i) {
      diff = std::max(diff, std::abs(ref[i] - first[i]));
    }
    if (comm.rank() == 0) {
      std::printf("phase 1: pksp vs %s  iterations=%d  residual=%.2e  "
                  "max|dx|=%.1e\n",
                  kPluginClass, static_cast<int>(st[kStatusIterations]),
                  st[kStatusResidualNorm], diff);
    }
    if (diff != 0.0) ++failures;

    // Phase 2: hot-replace the backend mid-run.  loadFile is not
    // collective, so one rank swaps the factory while the others wait.
    comm.barrier();
    if (comm.rank() == 0) {
      const auto report =
          plugin::PluginRegistry::instance().loadFile(pluginPath);
      std::printf("phase 2: reload %s -> %s%s\n", pluginPath.c_str(),
                  report.ok ? "ok" : report.error.c_str(),
                  report.replaced ? " (factory replaced)" : "");
      if (!report.ok || !report.replaced) ++failures;
    }
    comm.barrier();

    // Phase 3: a fresh instance now comes from the replacement factory;
    // re-solve the same operator and check against the baseline again.
    const std::vector<double> second = solveWith(comm, kPluginClass, n, &st);
    if (second.empty() || second.size() != ref.size()) {
      ++failures;
      return;
    }
    diff = 0.0;
    for (std::size_t i = 0; i < ref.size(); ++i) {
      diff = std::max(diff, std::abs(ref[i] - second[i]));
    }
    double worst = 0.0;
    for (double v : second) worst = std::max(worst, std::abs(v - 1.0));
    if (comm.rank() == 0) {
      std::printf("phase 3: replacement solve  converged=%d  max|dx|=%.1e  "
                  "max|x-1|=%.1e\n",
                  static_cast<int>(st[kStatusConverged]), diff, worst);
    }
    if (diff != 0.0 || st[kStatusConverged] != 1.0 || worst > 1e-8) {
      ++failures;
    }
  });

  if (failures.load() != 0) {
    std::fprintf(stderr, "plugin_swap: FAILED\n");
    return 1;
  }
  std::printf("plugin_swap: OK (n=%d, ranks=%d)\n", n, ranks);
  return 0;
}
