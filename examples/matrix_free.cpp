// Matrix-free solve (§5.5): the application never assembles its operator.
//
// The application component *provides* the MatrixFree port (the hybrid
// uses/provides pattern of §5.6 case c): the solver calls back into the
// application for every y = A*x.  Here the "application physics" is the
// 2-D Laplacian applied stencil-wise with explicit neighbor exchange —
// no sparse matrix is ever formed.
#include <cstdio>

#include "cca/cca.hpp"
#include "comm/comm.hpp"
#include "comm/comm_handle.hpp"
#include "comm/tags.hpp"
#include "lisi/sparse_solver.hpp"
#include "sparse/partition.hpp"

namespace {

/// Stencil-applying MatrixFree port: y = (-lap u) * h^2 on an n-by-n grid,
/// rows distributed by block rows of grid points.
class StencilOperator final : public lisi::MatrixFree {
 public:
  StencilOperator(const lisi::comm::Comm& comm, int n)
      : comm_(comm), n_(n), part_(n * n, comm.size()) {}

  [[nodiscard]] int localRows() const {
    return part_.localRows(comm_.rank());
  }
  [[nodiscard]] int startRow() const { return part_.startRow(comm_.rank()); }

  int matMult(lisi::OperatorId id, lisi::RArray<const double> x,
              lisi::RArray<double> y, int length) override {
    if (id != lisi::OperatorId::kMatrix || length != localRows()) return 1;
    // Exchange boundary rows of grid points with neighbor ranks.  A rank
    // needs up to n values below its first row and above its last row.
    const int s = startRow();
    const int e = s + length;
    std::vector<double> below(static_cast<std::size_t>(n_), 0.0);
    std::vector<double> above(static_cast<std::size_t>(n_), 0.0);
    exchangeHalo(x, below, above);

    auto at = [&](int g) -> double {
      if (g >= s && g < e) return x[g - s];
      if (g >= s - n_ && g < s) return below[static_cast<std::size_t>(g - (s - n_))];
      if (g >= e && g < e + n_) return above[static_cast<std::size_t>(g - e)];
      return 0.0;  // outside the halo: unreachable for the 5-point stencil
    };
    for (int i = 0; i < length; ++i) {
      const int g = s + i;
      const int ix = g % n_;
      double acc = 4.0 * x[i];
      if (ix > 0) acc -= at(g - 1);
      if (ix + 1 < n_) acc -= at(g + 1);
      if (g - n_ >= 0) acc -= at(g - n_);
      if (g + n_ < n_ * n_) acc -= at(g + n_);
      y[i] = acc;
    }
    return 0;
  }

 private:
  void exchangeHalo(lisi::RArray<const double> x, std::vector<double>& below,
                    std::vector<double>& above) {
    // Conservative halo: ship the first/last min(n, len) entries to the
    // previous/next rank.  (Uneven partitions may split a grid row across
    // more than two ranks only when ranks own < n rows; this demo keeps
    // ranks >= one grid row by construction.)
    const int rank = comm_.rank();
    const int p = comm_.size();
    const int len = x.length();
    const int k = std::min(n_, len);
    if (rank > 0) {
      comm_.send(std::span<const double>(x.data(), static_cast<std::size_t>(k)),
                 rank - 1, lisi::comm::tags::kStencilHaloToPrev);
    }
    if (rank + 1 < p) {
      comm_.send(std::span<const double>(x.data() + len - k,
                                         static_cast<std::size_t>(k)),
                 rank + 1, lisi::comm::tags::kStencilHaloToNext);
    }
    if (rank + 1 < p) {
      comm_.recv(std::span<double>(above.data(), static_cast<std::size_t>(k)),
                 rank + 1, lisi::comm::tags::kStencilHaloToPrev);
    }
    if (rank > 0) {
      comm_.recv(std::span<double>(below.data() + (n_ - k),
                                   static_cast<std::size_t>(k)),
                 rank - 1, lisi::comm::tags::kStencilHaloToNext);
    }
  }

  const lisi::comm::Comm& comm_;
  int n_;
  lisi::sparse::BlockRowPartition part_;
};

/// Application component providing the MatrixFree port.
class StencilApp final : public cca::Component {
 public:
  void setServices(cca::Services& services) override {
    services_ = &services;
  }
  /// Bind the per-run operator (ports are registered lazily per run in this
  /// demo; a real application would provide it from setServices).
  static std::shared_ptr<StencilOperator> operatorInstance;

 private:
  cca::Services* services_ = nullptr;
};

std::shared_ptr<StencilOperator> StencilApp::operatorInstance;

}  // namespace

int main() {
  using namespace lisi;
  registerSolverComponents();

  const int n = 48;
  const int ranks = 4;
  std::printf("Matrix-free solve of the %dx%d Laplacian through the LISI "
              "MatrixFree port (%d ranks)\n",
              n, n, ranks);

  comm::World::run(ranks, [&](comm::Comm& comm) {
    auto op = std::make_shared<StencilOperator>(comm, n);

    cca::Framework fw;
    // Register a tiny ad-hoc application component that provides the port.
    cca::Framework::registerClass("demo.StencilApp", [op] {
      struct App final : cca::Component {
        std::shared_ptr<StencilOperator> op;
        explicit App(std::shared_ptr<StencilOperator> o) : op(std::move(o)) {}
        void setServices(cca::Services& s) override {
          s.addProvidesPort(op, kMatrixFreePortName, kMatrixFreePortType);
        }
      };
      return std::make_shared<App>(op);
    });
    fw.instantiate("app", "demo.StencilApp");
    fw.instantiate("solver", kPkspComponentClass);
    // Hybrid pattern: the solver *uses* the application's MatrixFree port.
    fw.connect("solver", kMatrixFreePortName, "app", kMatrixFreePortName);

    auto solver =
        fw.getProvidesPortAs<SparseSolver>("solver", kSparseSolverPortName);
    const long handle = comm::registerHandle(comm);
    const int m = op->localRows();
    int rc = solver->initialize(handle);
    if (rc == 0) rc = solver->setStartRow(op->startRow());
    if (rc == 0) rc = solver->setLocalRows(m);
    if (rc == 0) rc = solver->setGlobalCols(n * n);
    if (rc == 0) rc = solver->set("solver", "cg");
    if (rc == 0) rc = solver->setDouble("tol", 1e-10);
    if (rc == 0) rc = solver->setInt("maxits", 20000);
    if (rc == 0) rc = solver->setBool("matrix_free", true);  // no setupMatrix!
    std::vector<double> b(static_cast<std::size_t>(m), 1.0);
    if (rc == 0) {
      rc = solver->setupRHS(RArray<const double>(b.data(), m), m, 1);
    }
    std::vector<double> x(static_cast<std::size_t>(m), 0.0);
    std::vector<double> status(kStatusLength, 0.0);
    if (rc == 0) {
      rc = solver->solve(RArray<double>(x.data(), m),
                         RArray<double>(status.data(), kStatusLength), m,
                         kStatusLength);
    }
    comm::releaseHandle(handle);

    // Verify through the operator itself.
    std::vector<double> ax(static_cast<std::size_t>(m));
    op->matMult(OperatorId::kMatrix, RArray<const double>(x.data(), m),
                RArray<double>(ax.data(), m), m);
    double localErr = 0.0;
    for (int i = 0; i < m; ++i) {
      localErr = std::max(localErr, std::abs(ax[static_cast<std::size_t>(i)] - 1.0));
    }
    const double err = comm.allreduceValue(localErr, comm::ReduceOp::kMax);
    if (comm.rank() == 0) {
      std::printf("rc=%d, %d CG iterations, residual %.2e, max|Ax-b|=%.2e\n",
                  rc, static_cast<int>(status[kStatusIterations]),
                  status[kStatusResidualNorm], err);
      std::printf("(no matrix was ever assembled)\n");
    }
  });
  return 0;
}
